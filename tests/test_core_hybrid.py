"""The hybrid dispatcher: routing decisions, fallbacks, data paths."""

import numpy as np

from repro.core import DispatchMode, run
from repro.core.fallback import FallbackReason, Route
from repro.mpi import SUM
from repro.mpi.ops import user_op

KIB = 1024


class TestRouting:
    def test_small_goes_mpi_large_goes_ccl(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            d = comm.coll
            small = d.decide(comm, "allreduce", 64,
                             None, SUM, mpx.device_array(16))
            large = d.decide(comm, "allreduce", 4 << 20,
                             None, SUM, mpx.device_array(16))
            return (small.route, small.reason, large.route)

        out = run(body, system=thetagpu1)[0]
        assert out[0] == Route.MPI
        assert out[1] == FallbackReason.TUNING
        assert out[2] == Route.XCCL

    def test_host_buffer_falls_back(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            host = np.zeros(1 << 20, dtype=np.float32)
            d = comm.coll.decide(comm, "allreduce", 4 << 20, None, SUM, host)
            return d.reason

        assert run(body, system=thetagpu1)[0] == FallbackReason.HOST_BUFFER

    def test_datatype_fallback(self, thetagpu1):
        from repro.mpi.datatypes import DOUBLE_COMPLEX as DC

        def body(mpx):
            comm = mpx.COMM_WORLD
            buf = mpx.device_array(16, dtype=np.complex128)
            d = comm.coll.decide(comm, "allreduce", 4 << 20, DC, SUM, buf)
            return d.reason

        assert run(body, system=thetagpu1)[0] == FallbackReason.DATATYPE

    def test_user_op_fallback(self, thetagpu1):
        op = user_op(lambda a, b: a + b)

        def body(mpx):
            comm = mpx.COMM_WORLD
            buf = mpx.device_array(1 << 20)
            from repro.mpi.datatypes import FLOAT
            d = comm.coll.decide(comm, "allreduce", 4 << 20, FLOAT, op, buf)
            return d.reason

        assert run(body, system=thetagpu1)[0] == FallbackReason.REDUCE_OP

    def test_scan_always_mpi(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            d = comm.coll.decide(comm, "scan", 4 << 20, None, SUM,
                                 mpx.device_array(16))
            return d.reason

        assert run(body, system=thetagpu1)[0] == FallbackReason.UNSUPPORTED_COLL

    def test_pure_mpi_mode_pins(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            d = comm.coll.decide(comm, "allreduce", 4 << 20, None, SUM,
                                 mpx.device_array(16))
            return d.reason

        out = run(body, system=thetagpu1, mode=DispatchMode.PURE_MPI)[0]
        assert out == FallbackReason.MODE

    def test_pure_xccl_ignores_table(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            d = comm.coll.decide(comm, "allreduce", 4, None, SUM,
                                 mpx.device_array(16))
            return d.route

        out = run(body, system=thetagpu1, mode=DispatchMode.PURE_XCCL)[0]
        assert out == Route.XCCL


class TestEndToEnd:
    def test_results_identical_across_modes(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            outs = []
            for count in (64, 1 << 18):
                s = mpx.device_array(count, fill=float(mpx.rank + 1))
                r = mpx.device_array(count)
                comm.Allreduce(s, r, SUM)
                outs.append(float(r.array[0]))
            return outs

        expected = [sum(x + 1 for x in range(8))] * 2
        for mode in DispatchMode:
            out = run(body, system=thetagpu1, mode=mode)[0]
            assert out == expected, mode

    def test_fallback_produces_correct_result(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            z = mpx.device_array(1 << 18, dtype=np.complex128,
                                 fill=1 + 1j)
            out = mpx.device_array(1 << 18, dtype=np.complex128)
            comm.Allreduce(z, out, SUM)
            stats = mpx.route_stats
            return (out.array[0], stats.total_fallbacks)

        value, fallbacks = run(body, system=thetagpu1)[0]
        assert value == 8 * (1 + 1j)
        assert fallbacks == 1

    def test_stats_counting(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            small = mpx.device_array(16, fill=0.0)
            big = mpx.device_array(1 << 20, fill=0.0)
            comm.Allreduce(small, mpx.device_array(16), SUM)   # mpi
            comm.Allreduce(big, mpx.device_array(1 << 20), SUM)  # xccl
            comm.Bcast(big, root=0)                            # xccl
            s = mpx.route_stats
            return (s.mpi_calls, s.xccl_calls)

        assert run(body, system=thetagpu1)[0] == (1, 2)

    def test_hybrid_beats_or_matches_both_pures(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            times = []
            for count in (64, 1 << 20):
                s = mpx.device_array(count, fill=1.0)
                r = mpx.device_array(count)
                comm.Barrier()
                t0 = mpx.now
                comm.Allreduce(s, r, SUM)
                times.append(mpx.now - t0)
            return times

        hybrid = run(body, system=thetagpu1)[0]
        pure_mpi = run(body, system=thetagpu1, mode=DispatchMode.PURE_MPI)[0]
        pure_ccl = run(body, system=thetagpu1, mode=DispatchMode.PURE_XCCL)[0]
        # small: hybrid ~ MPI (beats CCL); large: hybrid ~ CCL (beats MPI)
        assert hybrid[0] <= pure_ccl[0]
        assert hybrid[1] <= pure_mpi[1] * 1.05

    def test_sendrecv_collectives_route_through_ccl(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            p = comm.size
            n = 1 << 16
            s = mpx.device_array(n * p)
            s.array[:] = np.repeat(mpx.rank * 100.0 + np.arange(p), n)
            r = mpx.device_array(n * p)
            comm.Alltoall(s, r)
            ok = np.array_equal(
                r.array, np.repeat(mpx.rank + np.arange(p) * 100.0, n))
            return ok and mpx.route_stats.xccl_calls == 1

        assert all(run(body, system=thetagpu1))

    def test_gather_scatter_ccl_route(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            p = comm.size
            n = 1 << 17
            s = mpx.device_array(n, fill=float(mpx.rank))
            r = mpx.device_array(n * p)
            comm.Gather(s, r, root=0)
            if mpx.rank == 0:
                assert np.array_equal(
                    r.array, np.repeat(np.arange(p, dtype=float), n))
            out = mpx.device_array(n)
            comm.Scatter(r, out, root=0)
            return float(out.array[0]) == float(mpx.rank)

        assert all(run(body, system=thetagpu1, mode=DispatchMode.PURE_XCCL))
