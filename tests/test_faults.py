"""Failure injection: dropped/delayed messages, dying ranks, CCL errors.

The fault matrix runs under BOTH rank schedulers (the ``both_scheds``
fixture): failure detection must behave identically whether ranks are
preemptive threads or cooperative fibers.
"""

import pytest

from repro import fastpath
from repro.core.abstraction import XCCLAbstractionLayer
from repro.core.fallback import FallbackReason
from repro.core.hybrid import DispatchMode, HybridDispatcher
from repro.core.runtime import world_communicator
from repro.errors import CCLError, DeadlockError, RankFailedError, SimulationError
from repro.mpi import SUM, Communicator
from repro.sim.engine import Engine
from repro.sim.faults import DelayRule, DropRule, FaultPlan, with_faults
from repro.xccl.nccl import NCCLBackend


@pytest.fixture(params=[False, True], ids=["thread-sched", "coop-sched"])
def both_scheds(request):
    """Run the fault matrix under the thread AND cooperative
    schedulers — fault semantics must not depend on the scheduler."""
    prev = fastpath.configure(coop_sched=request.param)
    yield request.param
    fastpath.configure(**prev)


class TestFaultPlan:
    def test_chaining(self):
        plan = FaultPlan().drop(0, 1).delay(1, 0, 50.0, nth=2)
        assert plan.drops == [DropRule(0, 1, 0)]
        assert plan.delays == [DelayRule(1, 0, 2, 50.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan().delay(0, 1, -1.0)


class TestDrops:
    def test_dropped_message_deadlocks_receiver(self, thetagpu1, both_scheds):
        engine = Engine(thetagpu1, nranks=2, progress_timeout_s=1.5)
        injector = with_faults(engine, FaultPlan().drop(0, 1, nth=0))

        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                comm.Send(ctx.device.zeros(16), 1)
            else:
                comm.Recv(ctx.device.zeros(16), source=0)

        with pytest.raises(RankFailedError) as exc_info:
            engine.run(body)
        assert any(isinstance(e, DeadlockError)
                   for e in exc_info.value.failures.values())
        assert len(injector.dropped) == 1

    def test_unrelated_traffic_survives_a_drop(self, thetagpu1, both_scheds):
        # drop a message between 2 and 3; ranks 0/1 must still finish —
        # we only assert on the survivors' results
        engine = Engine(thetagpu1, nranks=4, progress_timeout_s=1.5)
        with_faults(engine, FaultPlan().drop(2, 3, nth=0))
        results = {}

        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank in (0, 1):
                peer = 1 - ctx.rank
                buf = ctx.device.zeros(8)
                buf.fill(float(ctx.rank))
                out = ctx.device.zeros(8)
                comm.Sendrecv(buf, peer, out, peer)
                results[ctx.rank] = out.array[0]
            elif ctx.rank == 2:
                comm.Send(ctx.device.zeros(8), 3)
            else:
                comm.Recv(ctx.device.zeros(8), source=2)

        with pytest.raises(RankFailedError):
            engine.run(body)
        assert results == {0: 1.0, 1: 0.0}

    def test_drop_nth_counts_per_pair(self, thetagpu1, both_scheds):
        engine = Engine(thetagpu1, nranks=2, progress_timeout_s=1.5)
        injector = with_faults(engine, FaultPlan().drop(0, 1, nth=1))

        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                comm.Send(ctx.device.zeros(4), 1, tag=0)  # survives
                comm.Send(ctx.device.zeros(4), 1, tag=1)  # dropped
            else:
                comm.Recv(ctx.device.zeros(4), source=0, tag=0)
                comm.Recv(ctx.device.zeros(4), source=0, tag=1)

        with pytest.raises(RankFailedError):
            engine.run(body)
        assert [m.tag for m in injector.dropped] == [1]


class TestDelays:
    def test_delay_extends_virtual_latency(self, thetagpu1, both_scheds):
        def run_with(plan):
            engine = Engine(thetagpu1, nranks=2, progress_timeout_s=5.0)
            if plan:
                with_faults(engine, plan)

            def body(ctx):
                comm = Communicator.world(ctx)
                if ctx.rank == 0:
                    comm.Send(ctx.device.zeros(16), 1)
                    return None
                comm.Recv(ctx.device.zeros(16), source=0)
                return ctx.now

            return engine.run(body)[1]

        base = run_with(None)
        delayed = run_with(FaultPlan().delay(0, 1, 500.0))
        assert delayed == pytest.approx(base + 500.0)

    def test_delayed_collective_still_correct(self, thetagpu1, both_scheds):
        engine = Engine(thetagpu1, nranks=4, progress_timeout_s=5.0)
        with_faults(engine, FaultPlan().delay(0, 1, 200.0).delay(2, 3, 99.0))

        def body(ctx):
            comm = Communicator.world(ctx)
            s = ctx.device.zeros(64)
            s.fill(1.0)
            r = ctx.device.zeros(64)
            comm.Allreduce(s, r, SUM)
            return r.array[0]

        assert engine.run(body) == [4.0] * 4

    def test_delay_slows_exactly_one_message(self, thetagpu1, both_scheds):
        engine = Engine(thetagpu1, nranks=2, progress_timeout_s=5.0)
        injector = with_faults(engine, FaultPlan().delay(0, 1, 100.0, nth=0))

        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                for tag in range(3):
                    comm.Send(ctx.device.zeros(4), 1, tag=tag)
            else:
                for tag in range(3):
                    comm.Recv(ctx.device.zeros(4), source=0, tag=tag)

        engine.run(body)
        assert len(injector.delayed) == 1


class TestDyingRanks:
    def test_rank_death_reported_not_hung(self, thetagpu1, both_scheds):
        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 2:
                raise RuntimeError("device fell off the bus")
            s = ctx.device.zeros(16)
            r = ctx.device.zeros(16)
            comm.Allreduce(s, r, SUM)

        engine = Engine(thetagpu1, nranks=4, progress_timeout_s=2.0)
        with pytest.raises(RankFailedError) as exc_info:
            engine.run(body)
        assert isinstance(exc_info.value.failures[2], RuntimeError)


class _FlakyNCCL(NCCLBackend):
    """A backend whose first collective call dies (the paper's
    NCCL-2.18.3-on-ThetaGPU incident, §4.4)."""

    def __init__(self):
        self.calls = 0

    def all_reduce(self, comm, sendbuf, recvbuf, count, dt, op):
        self.calls += 1
        if self.calls == 1:
            raise CCLError("internal error - please report this issue")
        super().all_reduce(comm, sendbuf, recvbuf, count, dt, op)


class TestCCLErrorFallback:
    def test_runtime_error_falls_back_to_mpi(self, thetagpu1, both_scheds):
        """A CCL runtime failure mid-call reroutes to MPI transparently
        — advantage 3 of §1.2, and the §4.4 war story."""
        engine = Engine(thetagpu1, nranks=4, progress_timeout_s=10.0)
        flaky_calls = {}

        def body(ctx):
            comm = Communicator.world(ctx)
            layer = XCCLAbstractionLayer(ctx, _FlakyNCCL())
            comm.coll = HybridDispatcher(layer, DispatchMode.PURE_XCCL)
            s = ctx.device.zeros(1 << 18)
            s.fill(1.0)
            r = ctx.device.zeros(1 << 18)
            comm.Allreduce(s, r, SUM)   # CCL raises -> MPI completes it
            flaky_calls[ctx.rank] = layer.backend.calls
            stats = comm.coll.stats
            return (float(r.array[0]), stats.mpi_calls,
                    dict(stats.fallbacks))

        out = engine.run(body)
        for value, mpi_calls, fallbacks in out:
            assert value == 4.0          # result correct despite the error
            assert mpi_calls == 1
            assert any(reason == FallbackReason.CCL_ERROR
                       for (_c, reason) in fallbacks)


class TestDerivedCommDegradation:
    """Fast paths must degrade gracefully — not corrupt data — when a
    FaultInjector patches the mailboxes, including on DERIVED
    communicators (Dup / Split), whose caches and CCL state are built
    after the injector installed itself."""

    def test_zero_copy_forces_copies_on_faulted_derived_comms(self,
                                                              thetagpu1):
        """With an injector installed every mailbox is patched, so the
        zero-copy handoff must snapshot payloads (copies_forced) — on
        the world comm AND on comms derived from it."""
        prev = fastpath.configure(zero_copy=True)

        def body(ctx):
            comm = world_communicator(ctx)
            dup = comm.Dup()
            half = dup.Split(color=ctx.rank % 2, key=ctx.rank)
            peer = 1 - half.rank if half.size > 1 else half.rank
            buf = ctx.device.zeros(1 << 14)
            buf.array[:] = float(ctx.rank)
            out = ctx.device.zeros(1 << 14)
            half.Sendrecv(buf, peer, out, peer)
            return float(out.array[0])

        try:
            engine = Engine(thetagpu1, nranks=4, progress_timeout_s=5.0)
            # the delay never fires (nth=99) — only the patching matters
            with_faults(engine, FaultPlan().delay(0, 1, 1.0, nth=99))
            results = engine.run(body)
        finally:
            fastpath.configure(**prev)
        # split comms: {0, 2} and {1, 3}; each rank receives its peer's
        # world rank
        assert results == [2.0, 3.0, 0.0, 1.0]
        assert fastpath.STATS.copies_forced > 0
        assert fastpath.STATS.copies_elided == 0

    def test_fusion_falls_back_unfused_on_faulted_dup_comm(self,
                                                           thetagpu1):
        """Grouped CCL send/recv on a Dup'd communicator under an
        injector: the fused whole-group exchange would bypass the
        patched ``post``, so it must fall back to unfused messages —
        counted, and still in program order."""
        import numpy as np
        from repro.mpi.datatypes import FLOAT
        from repro.xccl.api import (xcclGroupEnd, xcclGroupStart,
                                    xcclRecv, xcclSend,
                                    xcclStreamSynchronize)
        prev = fastpath.configure(group_fusion=True)

        def body(ctx):
            world = world_communicator(ctx, mode=DispatchMode.PURE_XCCL)
            comm = world.Dup()
            comm.coll = world.coll   # Dup keeps the plain MPI dispatcher
            xc = comm.coll.layer.ccl_comm(comm)
            peer = (comm.rank + 1) % comm.size
            src = (comm.rank - 1) % comm.size
            outs = [ctx.device.zeros(4, dtype=np.float32)
                    for _ in range(3)]
            ins_ = [ctx.device.zeros(4, dtype=np.float32)
                    for _ in range(3)]
            for i, o in enumerate(outs):
                o.array[:] = 10 * comm.rank + i
            xcclGroupStart(xc)
            for i in range(3):
                xcclSend(outs[i], 4, FLOAT, peer, xc)
                xcclRecv(ins_[i], 4, FLOAT, src, xc)
            xcclGroupEnd()
            xcclStreamSynchronize(xc)
            return [float(b.array[0]) for b in ins_]

        try:
            engine = Engine(thetagpu1, nranks=4, progress_timeout_s=5.0)
            with_faults(engine, FaultPlan().delay(0, 1, 1.0, nth=99))
            results = engine.run(body)
        finally:
            fastpath.configure(**prev)
        for rank, vals in enumerate(results):
            src = (rank - 1) % 4
            assert vals == [10.0 * src, 10.0 * src + 1, 10.0 * src + 2]
        assert fastpath.STATS.fusion_fallbacks > 0

    def test_hier_collective_on_split_comm_survives_injector(self):
        """A hierarchical (multi-node) allreduce on a Split-derived
        communicator stays correct with an injector installed: the
        pipelined hierarchy's sub-comms inherit the degraded (copying)
        transport."""
        from repro.hw.systems import make_system
        prev = fastpath.configure(hier_pipe=True, zero_copy=True)

        def body(ctx):
            comm = world_communicator(ctx)
            # everyone in one color: a derived comm congruent to world
            sub = comm.Split(color=0, key=ctx.rank)
            buf = ctx.device.zeros(1 << 20)
            buf.array[:] = 1.0
            out = ctx.device.zeros(1 << 20)
            sub.Allreduce(buf, out, op=SUM)
            return float(out.array[0])

        try:
            engine = Engine(make_system("thetagpu", 2), nranks=16,
                            progress_timeout_s=5.0)
            with_faults(engine, FaultPlan().delay(0, 1, 1.0, nth=99))
            results = engine.run(body)
        finally:
            fastpath.configure(**prev)
        assert results == [16.0] * 16
        assert fastpath.STATS.copies_forced > 0
