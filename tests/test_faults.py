"""Failure injection: dropped/delayed messages, dying ranks, CCL errors."""

import pytest

from repro.core.abstraction import XCCLAbstractionLayer
from repro.core.fallback import FallbackReason
from repro.core.hybrid import DispatchMode, HybridDispatcher
from repro.errors import CCLError, DeadlockError, RankFailedError, SimulationError
from repro.mpi import SUM, Communicator
from repro.sim.engine import Engine
from repro.sim.faults import DelayRule, DropRule, FaultPlan, with_faults
from repro.xccl.nccl import NCCLBackend


class TestFaultPlan:
    def test_chaining(self):
        plan = FaultPlan().drop(0, 1).delay(1, 0, 50.0, nth=2)
        assert plan.drops == [DropRule(0, 1, 0)]
        assert plan.delays == [DelayRule(1, 0, 2, 50.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan().delay(0, 1, -1.0)


class TestDrops:
    def test_dropped_message_deadlocks_receiver(self, thetagpu1):
        engine = Engine(thetagpu1, nranks=2, progress_timeout_s=1.5)
        injector = with_faults(engine, FaultPlan().drop(0, 1, nth=0))

        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                comm.Send(ctx.device.zeros(16), 1)
            else:
                comm.Recv(ctx.device.zeros(16), source=0)

        with pytest.raises(RankFailedError) as exc_info:
            engine.run(body)
        assert any(isinstance(e, DeadlockError)
                   for e in exc_info.value.failures.values())
        assert len(injector.dropped) == 1

    def test_unrelated_traffic_survives_a_drop(self, thetagpu1):
        # drop a message between 2 and 3; ranks 0/1 must still finish —
        # we only assert on the survivors' results
        engine = Engine(thetagpu1, nranks=4, progress_timeout_s=1.5)
        with_faults(engine, FaultPlan().drop(2, 3, nth=0))
        results = {}

        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank in (0, 1):
                peer = 1 - ctx.rank
                buf = ctx.device.zeros(8)
                buf.fill(float(ctx.rank))
                out = ctx.device.zeros(8)
                comm.Sendrecv(buf, peer, out, peer)
                results[ctx.rank] = out.array[0]
            elif ctx.rank == 2:
                comm.Send(ctx.device.zeros(8), 3)
            else:
                comm.Recv(ctx.device.zeros(8), source=2)

        with pytest.raises(RankFailedError):
            engine.run(body)
        assert results == {0: 1.0, 1: 0.0}

    def test_drop_nth_counts_per_pair(self, thetagpu1):
        engine = Engine(thetagpu1, nranks=2, progress_timeout_s=1.5)
        injector = with_faults(engine, FaultPlan().drop(0, 1, nth=1))

        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                comm.Send(ctx.device.zeros(4), 1, tag=0)  # survives
                comm.Send(ctx.device.zeros(4), 1, tag=1)  # dropped
            else:
                comm.Recv(ctx.device.zeros(4), source=0, tag=0)
                comm.Recv(ctx.device.zeros(4), source=0, tag=1)

        with pytest.raises(RankFailedError):
            engine.run(body)
        assert [m.tag for m in injector.dropped] == [1]


class TestDelays:
    def test_delay_extends_virtual_latency(self, thetagpu1):
        def run_with(plan):
            engine = Engine(thetagpu1, nranks=2, progress_timeout_s=5.0)
            if plan:
                with_faults(engine, plan)

            def body(ctx):
                comm = Communicator.world(ctx)
                if ctx.rank == 0:
                    comm.Send(ctx.device.zeros(16), 1)
                    return None
                comm.Recv(ctx.device.zeros(16), source=0)
                return ctx.now

            return engine.run(body)[1]

        base = run_with(None)
        delayed = run_with(FaultPlan().delay(0, 1, 500.0))
        assert delayed == pytest.approx(base + 500.0)

    def test_delayed_collective_still_correct(self, thetagpu1):
        engine = Engine(thetagpu1, nranks=4, progress_timeout_s=5.0)
        with_faults(engine, FaultPlan().delay(0, 1, 200.0).delay(2, 3, 99.0))

        def body(ctx):
            comm = Communicator.world(ctx)
            s = ctx.device.zeros(64)
            s.fill(1.0)
            r = ctx.device.zeros(64)
            comm.Allreduce(s, r, SUM)
            return r.array[0]

        assert engine.run(body) == [4.0] * 4

    def test_delay_slows_exactly_one_message(self, thetagpu1):
        engine = Engine(thetagpu1, nranks=2, progress_timeout_s=5.0)
        injector = with_faults(engine, FaultPlan().delay(0, 1, 100.0, nth=0))

        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                for tag in range(3):
                    comm.Send(ctx.device.zeros(4), 1, tag=tag)
            else:
                for tag in range(3):
                    comm.Recv(ctx.device.zeros(4), source=0, tag=tag)

        engine.run(body)
        assert len(injector.delayed) == 1


class TestDyingRanks:
    def test_rank_death_reported_not_hung(self, thetagpu1):
        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 2:
                raise RuntimeError("device fell off the bus")
            s = ctx.device.zeros(16)
            r = ctx.device.zeros(16)
            comm.Allreduce(s, r, SUM)

        engine = Engine(thetagpu1, nranks=4, progress_timeout_s=2.0)
        with pytest.raises(RankFailedError) as exc_info:
            engine.run(body)
        assert isinstance(exc_info.value.failures[2], RuntimeError)


class _FlakyNCCL(NCCLBackend):
    """A backend whose first collective call dies (the paper's
    NCCL-2.18.3-on-ThetaGPU incident, §4.4)."""

    def __init__(self):
        self.calls = 0

    def all_reduce(self, comm, sendbuf, recvbuf, count, dt, op):
        self.calls += 1
        if self.calls == 1:
            raise CCLError("internal error - please report this issue")
        super().all_reduce(comm, sendbuf, recvbuf, count, dt, op)


class TestCCLErrorFallback:
    def test_runtime_error_falls_back_to_mpi(self, thetagpu1):
        """A CCL runtime failure mid-call reroutes to MPI transparently
        — advantage 3 of §1.2, and the §4.4 war story."""
        engine = Engine(thetagpu1, nranks=4, progress_timeout_s=10.0)
        flaky_calls = {}

        def body(ctx):
            comm = Communicator.world(ctx)
            layer = XCCLAbstractionLayer(ctx, _FlakyNCCL())
            comm.coll = HybridDispatcher(layer, DispatchMode.PURE_XCCL)
            s = ctx.device.zeros(1 << 18)
            s.fill(1.0)
            r = ctx.device.zeros(1 << 18)
            comm.Allreduce(s, r, SUM)   # CCL raises -> MPI completes it
            flaky_calls[ctx.rank] = layer.backend.calls
            stats = comm.coll.stats
            return (float(r.array[0]), stats.mpi_calls,
                    dict(stats.fallbacks))

        out = engine.run(body)
        for value, mpi_calls, fallbacks in out:
            assert value == 4.0          # result correct despite the error
            assert mpi_calls == 1
            assert any(reason == FallbackReason.CCL_ERROR
                       for (_c, reason) in fallbacks)
