"""Communicator identity, Dup/Split, context isolation."""

import pytest

from repro.errors import MPICommError, MPIRankError
from repro.mpi import SUM, Communicator


def world(ctx):
    return Communicator.world(ctx)


class TestIdentity:
    def test_rank_size(self, thetagpu1, spmd):
        out = spmd(thetagpu1, lambda ctx: (world(ctx).rank, world(ctx).size),
                   nranks=4)
        assert out == [(r, 4) for r in range(4)]

    def test_get_rank_get_size(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            return comm.Get_rank(), comm.Get_size()

        assert spmd(thetagpu1, body, nranks=2) == [(0, 2), (1, 2)]

    def test_world_rank_translation(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            with pytest.raises(MPIRankError):
                comm.world_rank(10)
            return comm.world_rank(1)

        assert spmd(thetagpu1, body, nranks=3)[0] == 1


class TestDup:
    def test_dup_isolates_context(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            dup = comm.Dup()
            peer = 1 - ctx.rank
            a = ctx.device.zeros(4)
            b = ctx.device.zeros(4)
            if ctx.rank == 0:
                a.fill(1.0)
                b.fill(2.0)
                dup.Send(b, peer, tag=0)    # dup traffic first
                comm.Send(a, peer, tag=0)
                return None
            # receive in the opposite order: contexts must not cross
            comm.Recv(a, source=peer, tag=0)
            dup.Recv(b, source=peer, tag=0)
            return (a.array[0], b.array[0])

        assert spmd(thetagpu1, body, nranks=2)[1] == (1.0, 2.0)

    def test_dup_same_group(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            dup = comm.Dup()
            return dup.rank == comm.rank and dup.size == comm.size

        assert all(spmd(thetagpu1, body, nranks=4))


class TestSplit:
    def test_split_even_odd(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            sub = comm.Split(color=ctx.rank % 2, key=ctx.rank)
            return (sub.rank, sub.size)

        out = spmd(thetagpu1, body, nranks=6)
        assert out == [(0, 3), (0, 3), (1, 3), (1, 3), (2, 3), (2, 3)]

    def test_split_key_reorders(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            sub = comm.Split(color=0, key=-ctx.rank)  # reverse order
            return sub.rank

        assert spmd(thetagpu1, body, nranks=4) == [3, 2, 1, 0]

    def test_split_undefined_color(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            sub = comm.Split(color=0 if ctx.rank == 0 else -1)
            return sub is None

        assert spmd(thetagpu1, body, nranks=3) == [False, True, True]

    def test_split_collectives_work(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            sub = comm.Split(color=ctx.rank // 2)
            buf = ctx.device.zeros(4)
            buf.fill(1.0)
            out = ctx.device.zeros(4)
            sub.Allreduce(buf, out, SUM)
            return out.array[0]

        assert spmd(thetagpu1, body, nranks=4) == [2.0] * 4


class TestFree:
    def test_use_after_free(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            comm.Free()
            try:
                comm.Barrier()
            except MPICommError:
                return "caught"
            return "missed"

        assert spmd(thetagpu1, body, nranks=2) == ["caught", "caught"]


class TestNonblockingCollectives:
    def test_iallreduce(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            a = ctx.device.zeros(8)
            a.fill(1.0)
            b = ctx.device.zeros(8)
            req = comm.Iallreduce(a, b, SUM)
            req.wait()
            return b.array[0]

        assert spmd(thetagpu1, body, nranks=4) == [4.0] * 4

    def test_ibarrier_ibcast(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            comm.Ibarrier().wait()
            buf = ctx.device.zeros(4)
            if ctx.rank == 0:
                buf.fill(5.0)
            comm.Ibcast(buf, root=0).wait()
            return buf.array[0]

        assert spmd(thetagpu1, body, nranks=3) == [5.0] * 3
