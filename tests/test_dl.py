"""DL substrate: models, compute model, Horovod fusion, trainer."""

import pytest

from repro.dl.compute import compute_model_for
from repro.dl.horovod import HorovodConfig, build_buckets
from repro.dl.models import resnet50, tiny_mlp, vgg16
from repro.dl.presets import horovod_preset
from repro.dl.trainer import project_throughput, train
from repro.errors import ConfigError
from repro.hw.systems import make_system
from repro.omb.stacks import make_stack
from repro.perfmodel.shape import shape_of
from repro.sim.engine import Engine

MB = 1 << 20


class TestModels:
    def test_resnet50_exact_params(self):
        assert resnet50().total_params == 25_557_032

    def test_vgg16_exact_params(self):
        assert vgg16().total_params == 138_357_544

    def test_resnet50_has_small_tensor_tail(self):
        # the BN gradients the hybrid small-message path targets
        small = [l for l in resnet50().layers if l.grad_bytes <= 16384]
        assert len(small) > 100

    def test_flops_forward_backward_ratio(self):
        m = resnet50()
        assert m.flops_per_image == pytest.approx(3 * m.fwd_flops_per_image)

    def test_tiny_mlp_structure(self):
        m = tiny_mlp(hidden=32, depth=2)
        assert m.total_params > 0
        assert m.layers[-1].name == "out.bias"


class TestComputeModel:
    def test_efficiency_monotone_in_batch(self):
        cm = compute_model_for(make_system("thetagpu", 1).devices[0])
        assert cm.efficiency(16) < cm.efficiency(64) < cm.efficiency(128)

    def test_efficiency_clamps(self):
        cm = compute_model_for(make_system("thetagpu", 1).devices[0])
        assert cm.efficiency(8) == cm.efficiency(16)
        assert cm.efficiency(512) == cm.efficiency(128)

    def test_step_time_scales_with_model(self):
        cm = compute_model_for(make_system("thetagpu", 1).devices[0])
        assert cm.step_time_us(vgg16(), 32) > cm.step_time_us(resnet50(), 32)

    def test_invalid_batch(self):
        cm = compute_model_for(make_system("thetagpu", 1).devices[0])
        with pytest.raises(ConfigError):
            cm.efficiency(0)

    def test_per_vendor_models(self):
        a100 = compute_model_for(make_system("thetagpu", 1).devices[0])
        mi100 = compute_model_for(make_system("mri", 1).devices[0])
        gaudi = compute_model_for(make_system("voyager", 1).devices[0])
        assert a100.peak_img_per_sec > gaudi.peak_img_per_sec > \
            mi100.peak_img_per_sec

    def test_backward_is_two_thirds(self):
        cm = compute_model_for(make_system("thetagpu", 1).devices[0])
        assert cm.backward_time_us(resnet50(), 32) == pytest.approx(
            cm.step_time_us(resnet50(), 32) * 2 / 3)


class TestFusionBuckets:
    def test_buckets_cover_all_layers(self):
        m = resnet50()
        buckets = build_buckets(m, 64 * MB)
        assert sum(len(b.layers) for b in buckets) == len(m.layers)
        assert sum(b.nbytes for b in buckets) == m.total_grad_bytes

    def test_bucket_size_respected(self):
        buckets = build_buckets(resnet50(), 1 * MB)
        for b in buckets:
            assert b.nbytes <= 1 * MB or len(b.layers) == 1

    def test_reverse_order_packing(self):
        m = tiny_mlp()
        buckets = build_buckets(m, 1 << 30)
        assert buckets[0].layers[0].name == m.layers[-1].name

    def test_oversized_single_tensor_gets_own_bucket(self):
        m = vgg16()  # fc1 gradient is ~411 MB
        buckets = build_buckets(m, 64 * MB)
        big = [b for b in buckets if b.nbytes > 64 * MB]
        assert all(len(b.layers) == 1 for b in big)
        assert big  # exists

    def test_smaller_threshold_more_buckets(self):
        m = resnet50()
        assert len(build_buckets(m, MB // 2)) > len(build_buckets(m, 64 * MB))


class TestTrainer:
    def _train(self, cluster, stack, backend, batch=32, steps=2,
               nranks=None, config=None):
        def body(ctx):
            s = make_stack(ctx, stack, backend)
            return train(ctx, s, tiny_mlp(), batch, steps=steps,
                         config=config or HorovodConfig())

        return Engine(cluster, nranks=nranks).run(body)[0]

    def test_throughput_positive(self, thetagpu1):
        r = self._train(thetagpu1, "hybrid", "nccl")
        assert r.img_per_sec > 0
        assert r.world_size == 8

    def test_all_stacks_run(self, thetagpu1):
        for stack in ("hybrid", "pure-xccl", "mpi", "openmpi", "ucc", "ccl"):
            r = self._train(thetagpu1, stack, "nccl", nranks=4)
            assert r.img_per_sec > 0, stack

    def test_bigger_batch_more_throughput(self, thetagpu1):
        r32 = self._train(thetagpu1, "hybrid", "nccl", batch=32, nranks=4)
        r128 = self._train(thetagpu1, "hybrid", "nccl", batch=128, nranks=4)
        assert r128.img_per_sec > r32.img_per_sec

    def test_invalid_args(self, thetagpu1):
        from repro.errors import RankFailedError
        with pytest.raises(RankFailedError):
            self._train(thetagpu1, "hybrid", "nccl", batch=0, nranks=2)

    def test_overlap_reduces_step_time(self, thetagpu1):
        no_overlap = self._train(
            thetagpu1, "hybrid", "nccl", nranks=4,
            config=HorovodConfig(overlap=0.0))
        full_overlap = self._train(
            thetagpu1, "hybrid", "nccl", nranks=4,
            config=HorovodConfig(overlap=0.95))
        assert full_overlap.step_time_us < no_overlap.step_time_us

    def test_penalty_slows_comm(self, thetagpu1):
        plain = self._train(thetagpu1, "openmpi", "nccl", nranks=4,
                            config=HorovodConfig(
                                overlap=0.0, large_message_penalty=1.0,
                                penalty_threshold_bytes=0))
        penalized = self._train(thetagpu1, "openmpi", "nccl", nranks=4,
                                config=HorovodConfig(
                                    overlap=0.0, large_message_penalty=5.0,
                                    penalty_threshold_bytes=0))
        assert penalized.comm_time_us > plain.comm_time_us


class TestProjection:
    def test_matches_engine_roughly(self, thetagpu1):
        """Projection and engine paths must agree at engine scale."""
        shape = shape_of(thetagpu1, range(8))
        proj = project_throughput(shape, "hybrid", "nccl",
                                  model=resnet50(), batch_per_device=128)

        def body(ctx):
            s = make_stack(ctx, "hybrid", "nccl")
            return train(ctx, s, resnet50(), 128, steps=2,
                         config=horovod_preset("hybrid", "nccl"))

        eng = Engine(thetagpu1, nranks=8).run(body)[0]
        assert proj.img_per_sec == pytest.approx(eng.img_per_sec, rel=0.2)

    def test_scales_beyond_engine(self):
        cluster = make_system("thetagpu", 16)
        shape = shape_of(cluster, range(128))
        r = project_throughput(shape, "hybrid", "nccl", batch_per_device=128)
        assert r.world_size == 128
        assert r.img_per_sec > 50000


class TestPresets:
    def test_known_stacks(self):
        for stack in ("hybrid", "pure-xccl", "mpi", "openmpi", "ucc"):
            assert horovod_preset(stack, "nccl").fusion_threshold_bytes > 0

    def test_ccl_presets_per_backend(self):
        for be in ("nccl", "msccl", "rccl", "hccl"):
            assert horovod_preset("ccl", be) is not None

    def test_unknown_stack(self):
        with pytest.raises(ConfigError):
            horovod_preset("gloo", "nccl")

    def test_unknown_ccl_backend(self):
        with pytest.raises(ConfigError):
            horovod_preset("ccl", "gloo")

    def test_hccl_multi_node_regime(self):
        single = horovod_preset("ccl", "hccl", multi_node=False)
        multi = horovod_preset("ccl", "hccl", multi_node=True)
        assert multi.large_message_penalty > single.large_message_penalty
