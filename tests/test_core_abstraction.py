"""The xCCL abstraction layer: caching, checks, mapped collectives."""

import numpy as np
import pytest

from repro.core.abstraction import XCCLAbstractionLayer
from repro.mpi import DOUBLE_COMPLEX, FLOAT, SUM, Communicator
from repro.mpi.ops import user_op


class TestBackendResolution:
    @pytest.mark.parametrize("system,expected", [
        ("thetagpu", "nccl"), ("mri", "rccl"), ("voyager", "hccl"),
    ])
    def test_auto_by_vendor(self, spmd, system, expected):
        from repro.hw.systems import make_system

        def body(ctx):
            return XCCLAbstractionLayer(ctx).backend_name

        assert spmd(make_system(system, 1), body, nranks=1)[0] == expected

    def test_explicit_backend(self, thetagpu1, spmd):
        def body(ctx):
            return XCCLAbstractionLayer(ctx, "msccl").backend_name

        assert spmd(thetagpu1, body, nranks=1)[0] == "msccl"


class TestChecks:
    def test_identify_device_buffer(self, thetagpu1, spmd):
        def body(ctx):
            layer = XCCLAbstractionLayer(ctx)
            dev = ctx.device.zeros(4)
            host = np.zeros(4)
            return (layer.identify_device_buffer(dev),
                    layer.identify_device_buffer(dev, host),
                    layer.identify_device_buffer(dev, None))

        assert spmd(thetagpu1, body, nranks=1)[0] == (True, False, True)

    def test_datatype_and_op_support(self, thetagpu1, spmd):
        def body(ctx):
            layer = XCCLAbstractionLayer(ctx)
            return (layer.supports_datatype(FLOAT),
                    layer.supports_datatype(DOUBLE_COMPLEX),
                    layer.supports_op(SUM),
                    layer.supports_op(user_op(lambda a, b: a)))

        assert spmd(thetagpu1, body, nranks=1)[0] == (True, False, True, False)


class TestCommCache:
    def test_one_ccl_comm_per_mpi_comm(self, thetagpu1, spmd):
        def body(ctx):
            layer = XCCLAbstractionLayer(ctx)
            comm = Communicator.world(ctx)
            a = layer.ccl_comm(comm)
            b = layer.ccl_comm(comm)
            dup = comm.Dup()
            c = layer.ccl_comm(dup)
            return (a is b, c is a, c.uid != a.uid)

        assert spmd(thetagpu1, body, nranks=2) == [(True, False, True)] * 2

    def test_uids_agree_across_ranks(self, thetagpu1, spmd):
        def body(ctx):
            layer = XCCLAbstractionLayer(ctx)
            comm = Communicator.world(ctx)
            return layer.ccl_comm(comm).uid

        uids = spmd(thetagpu1, body, nranks=4)
        assert len(set(uids)) == 1

    def test_invalidate(self, thetagpu1, spmd):
        def body(ctx):
            layer = XCCLAbstractionLayer(ctx)
            comm = Communicator.world(ctx)
            a = layer.ccl_comm(comm)
            layer.invalidate(comm)
            b = layer.ccl_comm(comm)
            return a.aborted and (b is not a)

        assert all(spmd(thetagpu1, body, nranks=2))


class TestMappedCollectives:
    def test_layer_allreduce(self, thetagpu1, spmd):
        def body(ctx):
            layer = XCCLAbstractionLayer(ctx)
            comm = Communicator.world(ctx)
            s = ctx.device.zeros(64)
            s.fill(2.0)
            r = ctx.device.zeros(64)
            layer.allreduce(comm, s, r, 64, FLOAT, SUM)
            return r.array[0]

        assert spmd(thetagpu1, body, nranks=4) == [8.0] * 4

    def test_layer_alltoallv_matches_mpi(self, thetagpu1, spmd):
        def body(ctx):
            layer = XCCLAbstractionLayer(ctx)
            comm = Communicator.world(ctx)
            p = comm.size
            counts = [2] * p
            displs = [2 * i for i in range(p)]
            s = ctx.device.zeros(2 * p)
            s.array[:] = np.repeat(ctx.rank * 10.0 + np.arange(p), 2)
            r_ccl = ctx.device.zeros(2 * p)
            layer.alltoallv(comm, s, counts, displs, r_ccl, counts, displs,
                            FLOAT)
            r_mpi = ctx.device.zeros(2 * p)
            comm.Alltoallv(s, counts, r_mpi, counts)
            return np.array_equal(r_ccl.array, r_mpi.array)

        assert all(spmd(thetagpu1, body, nranks=4))

    def test_layer_gatherv(self, thetagpu1, spmd):
        def body(ctx):
            layer = XCCLAbstractionLayer(ctx)
            comm = Communicator.world(ctx)
            p = comm.size
            counts = [r + 1 for r in range(p)]
            displs = list(np.concatenate([[0], np.cumsum(counts)[:-1]]))
            s = ctx.device.zeros(counts[ctx.rank])
            s.fill(float(ctx.rank))
            r = ctx.device.zeros(sum(counts))
            layer.gatherv(comm, s, r, counts, displs, FLOAT, root=1)
            if ctx.rank != 1:
                return True
            expect = np.concatenate(
                [np.full(c, float(i)) for i, c in enumerate(counts)])
            return np.array_equal(r.array, expect)

        assert all(spmd(thetagpu1, body, nranks=4))

    def test_layer_scatterv(self, thetagpu1, spmd):
        def body(ctx):
            layer = XCCLAbstractionLayer(ctx)
            comm = Communicator.world(ctx)
            p = comm.size
            counts = [3] * p
            displs = [3 * i for i in range(p)]
            s = ctx.device.zeros(3 * p)
            if ctx.rank == 0:
                s.array[:] = np.repeat(np.arange(p, dtype=float), 3)
            r = ctx.device.zeros(3)
            layer.scatterv(comm, s, counts, displs, r, FLOAT, root=0)
            return r.array[0] == float(ctx.rank)

        assert all(spmd(thetagpu1, body, nranks=3))

    def test_layer_allgatherv(self, thetagpu1, spmd):
        def body(ctx):
            layer = XCCLAbstractionLayer(ctx)
            comm = Communicator.world(ctx)
            p = comm.size
            counts = [2 * (r + 1) for r in range(p)]
            displs = list(np.concatenate([[0], np.cumsum(counts)[:-1]]))
            s = ctx.device.zeros(counts[ctx.rank])
            s.fill(float(ctx.rank))
            r = ctx.device.zeros(sum(counts))
            layer.allgatherv(comm, s, r, counts, displs, FLOAT)
            expect = np.concatenate(
                [np.full(c, float(i)) for i, c in enumerate(counts)])
            return np.array_equal(r.array, expect)

        assert all(spmd(thetagpu1, body, nranks=3))
