"""Dispatch-pipeline parity: every collective, backend, and gate combo.

The staged pipeline (`repro.core.dispatch`) replaced the hand-written
per-collective method triplets; these tests pin the refactor's
contract:

* all 12 collectives × {NCCL, RCCL, HCCL, MSCCL} × all 8 combinations
  of the three fast-path gates produce bit-identical payloads AND
  virtual times — the all-gates-off combo is the direct, unoptimized
  path, so every other combo is compared against it;
* the MPI-algorithm fallback route (PURE_MPI mode) holds the same
  invariant;
* the cooperative rank scheduler (``MPIX_COOP_SCHED``) produces the
  same payloads and virtual times as the thread scheduler, on both
  routes, under every gate combination;
* the §3.2 capability checks live in exactly one place
  (``CollectivePipeline.capability``) and still produce the paper's
  fallbacks: HCCL is float-only, no CCL does double-complex;
* the hierarchy gate (``MPIX_HIER_PIPE``) is provably inert on one
  node (payloads and times), changes only *times* across nodes, and
  is scheduler-independent to the bit.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import fastpath
from repro.core import DispatchMode, runtime
from repro.core.dispatch import REGISTRY, CollectivePipeline
from repro.core.fallback import FallbackReason, Route
from repro.mpi.ops import SUM

#: (system, backend, ranks) — one per CCL the paper ports.  Single-node
#: runs are exactly reproducible, which is what makes bit-comparison
#: valid.
STACKS = [
    ("thetagpu", None, 4),      # NCCL
    ("mri", None, 2),           # RCCL
    ("voyager", None, 4),       # HCCL
    ("thetagpu", "msccl", 4),   # MSCCL
]

#: all 8 combinations of (plan_cache, group_fusion, zero_copy).
GATE_COMBOS = list(itertools.product([False, True], repeat=3))

N = 13  # odd per-rank count exercises uneven chunk geometry


def _vec_geometry(p):
    counts = [r + 1 for r in range(p)]
    displs = [sum(counts[:r]) for r in range(p)]
    return counts, displs


def _twelve_collectives_body(mpx):
    """Run all 12 registry collectives once; record payload bytes and
    the virtual clock after each."""
    comm = mpx.COMM_WORLD
    ctx = comm.ctx
    p, rank = comm.size, comm.rank
    log = []

    def snap(buf):
        log.append((buf.array.tobytes(), ctx.now))

    base = np.arange(N * p, dtype=np.float32) + rank
    send = ctx.device.zeros(N * p, dtype=np.float32)
    send.array[:] = base
    recv = ctx.device.zeros(N * p, dtype=np.float32)

    comm.Allreduce(send.view(0, N), recv.view(0, N), SUM)
    snap(recv)
    comm.Bcast(recv.view(0, N), root=0)
    snap(recv)
    comm.Reduce(send.view(0, N), recv.view(0, N), SUM, 0)
    snap(recv)
    comm.Allgather(send.view(0, N), recv.view(0, N * p))
    snap(recv)
    comm.Alltoall(send, recv)
    snap(recv)
    comm.Reduce_scatter_block(send, recv.view(0, N), SUM)
    snap(recv)
    comm.Gather(send.view(0, N), recv.view(0, N * p), root=0)
    snap(recv)
    comm.Scatter(send, recv.view(0, N), root=0)
    snap(recv)

    counts, displs = _vec_geometry(p)
    total = sum(counts)
    vsend = ctx.device.zeros(counts[rank], dtype=np.float32)
    vsend.array[:] = rank * 10.0 + np.arange(counts[rank])
    vrecv = ctx.device.zeros(total, dtype=np.float32)
    comm.Allgatherv(vsend, vrecv, counts)
    snap(vrecv)
    comm.Gatherv(vsend, vrecv, counts, root=0)
    snap(vrecv)
    vroot = ctx.device.zeros(total, dtype=np.float32)
    vroot.array[:] = np.arange(total, dtype=np.float32)
    comm.Scatterv(vroot, counts, vrecv.view(0, counts[rank]), root=0)
    snap(vrecv)

    a2a_counts = [((rank + r) % 3) + 1 for r in range(p)]
    a2a_displs = [sum(a2a_counts[:r]) for r in range(p)]
    asend = ctx.device.zeros(sum(a2a_counts), dtype=np.float32)
    asend.array[:] = rank * 100.0 + np.arange(sum(a2a_counts))
    arecv = ctx.device.zeros(sum(a2a_counts), dtype=np.float32)
    comm.Alltoallv(asend, a2a_counts, arecv, a2a_counts)
    snap(arecv)

    return log


def _run_under_gates(combo, body, coop=False, **kw):
    prev = fastpath.configure(plan_cache=combo[0], group_fusion=combo[1],
                              zero_copy=combo[2], coop_sched=coop)
    try:
        return runtime.run(body, nodes=1, **kw)
    finally:
        fastpath.configure(**prev)


def _assert_bit_identical(baseline, candidate, combo, nranks):
    assert len(baseline) == len(candidate) == nranks
    for rank, (a, b) in enumerate(zip(baseline, candidate)):
        assert len(a) == len(b) == 12
        for i, ((data_a, t_a), (data_b, t_b)) in enumerate(zip(a, b)):
            assert data_a == data_b, \
                f"gates={combo}: rank {rank} payload {i} differs"
            assert t_a == t_b, \
                f"gates={combo}: rank {rank} clock after op {i} differs"


def test_registry_covers_all_twelve():
    """The dispatch registry is exactly the 12 routed collectives."""
    assert sorted(REGISTRY) == sorted([
        "allgather", "allgatherv", "allreduce", "alltoall", "alltoallv",
        "bcast", "gather", "gatherv", "reduce", "reduce_scatter_block",
        "scatter", "scatterv"])
    for name, spec in REGISTRY.items():
        assert spec.name == name
        assert callable(spec.ccl) and callable(spec.mpi)


@pytest.mark.parametrize("system,backend,nranks", STACKS,
                         ids=[f"{s}-{b or 'native'}" for s, b, _ in STACKS])
def test_all_collectives_all_gates_bit_identical_ccl(system, backend, nranks):
    """12 collectives through the CCL route: payloads and virtual times
    bit-identical across all 8 gate combinations (all-off == the
    pre-refactor direct path)."""
    results = {}
    for combo in GATE_COMBOS:
        results[combo] = _run_under_gates(
            combo, _twelve_collectives_body, system=system,
            ranks_per_node=nranks, backend=backend,
            mode=DispatchMode.PURE_XCCL)
    baseline = results[(False, False, False)]
    for combo in GATE_COMBOS[1:]:
        _assert_bit_identical(baseline, results[combo], combo, nranks)


@pytest.mark.parametrize("system,backend,nranks", STACKS,
                         ids=[f"{s}-{b or 'native'}" for s, b, _ in STACKS])
def test_coop_scheduler_bit_identical_ccl(system, backend, nranks):
    """The cooperative scheduler (``MPIX_COOP_SCHED``) against the
    thread scheduler: payloads and virtual times bit-identical for all
    12 collectives under every fast-path gate combination.  Scheduling
    may only change *when wall-clock work happens*, never what a
    collective computes or costs."""
    baseline = _run_under_gates(
        (False, False, False), _twelve_collectives_body, system=system,
        ranks_per_node=nranks, backend=backend, mode=DispatchMode.PURE_XCCL)
    for combo in GATE_COMBOS:
        candidate = _run_under_gates(
            combo, _twelve_collectives_body, coop=True, system=system,
            ranks_per_node=nranks, backend=backend,
            mode=DispatchMode.PURE_XCCL)
        _assert_bit_identical(baseline, candidate, combo + ("coop",), nranks)


def test_coop_scheduler_bit_identical_mpi_fallback():
    """The same thread-vs-fiber invariant on the MPI-algorithm route,
    whose point-to-point protocols block far more often per call."""
    baseline = _run_under_gates(
        (False, False, False), _twelve_collectives_body, system="thetagpu",
        ranks_per_node=4, mode=DispatchMode.PURE_MPI)
    for combo in GATE_COMBOS:
        candidate = _run_under_gates(
            combo, _twelve_collectives_body, coop=True, system="thetagpu",
            ranks_per_node=4, mode=DispatchMode.PURE_MPI)
        _assert_bit_identical(baseline, candidate, combo + ("coop",), 4)


def test_all_collectives_all_gates_bit_identical_mpi_fallback():
    """The same invariant on the MPI-algorithm fallback route."""
    results = {}
    for combo in GATE_COMBOS:
        results[combo] = _run_under_gates(
            combo, _twelve_collectives_body, system="thetagpu",
            ranks_per_node=4, mode=DispatchMode.PURE_MPI)
    baseline = results[(False, False, False)]
    for combo in GATE_COMBOS[1:]:
        _assert_bit_identical(baseline, results[combo], combo, 4)


def test_ccl_and_mpi_routes_agree_on_payloads():
    """Both execute routes compute the same collectives: payload bytes
    (not times) must agree between PURE_XCCL and PURE_MPI."""
    xccl = runtime.run(_twelve_collectives_body, system="thetagpu", nodes=1,
                       ranks_per_node=4, mode=DispatchMode.PURE_XCCL)
    mpi = runtime.run(_twelve_collectives_body, system="thetagpu", nodes=1,
                      ranks_per_node=4, mode=DispatchMode.PURE_MPI)
    for rank, (a, b) in enumerate(zip(xccl, mpi)):
        for i, ((data_a, _), (data_b, _)) in enumerate(zip(a, b)):
            assert data_a == data_b, f"rank {rank} payload {i} differs"


class TestCapabilityChecksInOnePlace:
    """§3.2 regressions: the datatype/op gate is asserted once, in
    ``CollectivePipeline.capability``, for every backend."""

    @pytest.mark.parametrize("system,backend", [
        ("thetagpu", None),     # NCCL
        ("mri", None),          # RCCL
        ("voyager", None),      # HCCL
        ("thetagpu", "msccl"),  # MSCCL
    ], ids=["nccl", "rccl", "hccl", "msccl"])
    def test_double_complex_falls_back_everywhere(self, system, backend):
        """No CCL has complex support: DOUBLE_COMPLEX must fall back on
        every backend (heFFTe's case in the paper)."""
        from repro.mpi.datatypes import DOUBLE_COMPLEX

        def body(mpx):
            comm = mpx.COMM_WORLD
            buf = mpx.device_array(8, dtype=np.complex128)
            d = comm.coll.decide(comm, "allreduce", 4 << 20, DOUBLE_COMPLEX,
                                 SUM, buf)
            return (d.route, d.reason)

        out = runtime.run(body, system=system, nodes=1, ranks_per_node=2,
                          backend=backend)[0]
        assert out == (Route.MPI, FallbackReason.DATATYPE)

    def test_hccl_is_float_only(self):
        """HCCL supports only float32 (paper §3.2): float64 falls back
        on HCCL but stays on the CCL route for the NCCL family."""
        from repro.mpi.datatypes import DOUBLE

        def body(mpx):
            comm = mpx.COMM_WORLD
            buf = mpx.device_array(8, dtype=np.float64)
            d = comm.coll.decide(comm, "allreduce", 4 << 20, DOUBLE, SUM, buf)
            return (d.route, d.reason)

        hccl = runtime.run(body, system="voyager", nodes=1,
                           ranks_per_node=2)[0]
        assert hccl == (Route.MPI, FallbackReason.DATATYPE)
        nccl = runtime.run(body, system="thetagpu", nodes=1,
                           ranks_per_node=2)[0]
        assert nccl == (Route.XCCL, FallbackReason.NONE)

    def test_fallback_still_computes_correctly(self):
        """A capability fallback runs the MPI algorithms and produces
        the right numbers (silent fallback, §1.2 advantage 3)."""
        def body(mpx):
            comm = mpx.COMM_WORLD
            z = mpx.device_array(64, dtype=np.complex128, fill=1 + 1j)
            out = mpx.device_array(64, dtype=np.complex128)
            comm.Allreduce(z, out, SUM)
            return (out.array[0], mpx.route_stats.total_fallbacks)

        value, fallbacks = runtime.run(body, system="voyager", nodes=1,
                                       ranks_per_node=4)[0]
        assert value == 4 * (1 + 1j)
        assert fallbacks == 1

    def test_capability_is_the_single_choke_point(self):
        """Structural pin: neither adapter re-states the §3.2 chain —
        the only references to the capability tables on the routing
        path are in ``CollectivePipeline.capability``."""
        import inspect

        from repro.core import abstraction, hybrid
        cap = inspect.getsource(CollectivePipeline.capability)
        assert "supports_datatype" in cap and "supports_op" in cap
        for module in (hybrid,):
            src = inspect.getsource(module)
            assert "supports_datatype" not in src
            assert "supports_op" not in src
        # the layer only *defines* the delegating helpers the pipeline
        # calls; it never walks the chain itself
        src = inspect.getsource(abstraction)
        assert src.count("supports_datatype") == 2  # def + backend delegate
        assert src.count("supports_op") == 2


def test_dispatch_stage_counters():
    """The execute stage reports route decisions into fastpath.STATS."""
    def body(mpx):
        comm = mpx.COMM_WORLD
        small = mpx.device_array(16)
        big = mpx.device_array(1 << 20)
        comm.Allreduce(small, mpx.device_array(16), SUM)     # mpi (tuning)
        comm.Allreduce(big, mpx.device_array(1 << 20), SUM)  # xccl
        z = mpx.device_array(16, dtype=np.complex128)
        comm.Allreduce(z, mpx.device_array(16, dtype=np.complex128),
                       SUM)                                  # mpi (datatype)
        return True

    fastpath.STATS.reset()
    runtime.run(body, system="thetagpu", nodes=1, ranks_per_node=4)
    snap = fastpath.snapshot()
    assert set(snap) == {"gates", "counters"}
    counters = snap["counters"]
    assert counters["dispatch_calls"] == 3 * 4
    assert counters["route_xccl"] == 4
    assert counters["route_mpi"] == 2 * 4
    assert counters["route_fallbacks"] == 4
    assert counters["ccl_errors"] == 0


#: the four uniform collectives the hierarchy executor covers, at a
#: payload at the reduction-collective routing crossover (2 MiB);
#: bcast's higher crossover keeps it on the flat route here, which the
#: parity pins cover too — the route stage must decline identically on
#: every rank
HIER_N = (2 << 20) // 4


def _hier_collectives_body(mpx):
    """The four hierarchy-eligible collectives at an inter-node payload
    size; returns (payload bytes, virtual clock) after each."""
    comm = mpx.COMM_WORLD
    ctx = comm.ctx
    p, rank = comm.size, comm.rank
    log = []

    def snap(buf):
        log.append((buf.array.tobytes(), ctx.now))

    rng = np.random.default_rng(41 + rank)
    send = mpx.device_array(HIER_N)
    send.array[:] = rng.integers(0, 5, HIER_N)  # exact under reassociation
    recv = mpx.device_array(HIER_N, fill=0.0)
    comm.Allreduce(send, recv, SUM)
    snap(recv)
    buf = mpx.device_array(HIER_N, fill=0.0)
    if rank == 1:
        buf.array[:] = rng.integers(0, 5, HIER_N)
    comm.Bcast(buf, root=1)
    snap(buf)
    ag = mpx.device_array(HIER_N * p, fill=0.0)
    comm.Allgather(send, ag)
    snap(ag)
    rs_in = mpx.device_array(HIER_N * p)
    rs_in.array[:] = rng.integers(0, 5, HIER_N * p)
    rs_out = mpx.device_array(HIER_N, fill=0.0)
    comm.Reduce_scatter_block(rs_in, rs_out, SUM)
    snap(rs_out)
    return log


def _run_hier(hier, coop=False, combo=(True, True, True)):
    from repro.hw.systems import make_system
    prev = fastpath.configure(plan_cache=combo[0], group_fusion=combo[1],
                              zero_copy=combo[2], coop_sched=coop,
                              hier_pipe=hier)
    fastpath.STATS.reset()
    try:
        cluster = make_system("thetagpu", 2, nics=4)
        out = runtime.run(_hier_collectives_body, system=cluster,
                          nranks=8, ranks_per_node=4)
        return out, fastpath.STATS.snapshot()
    finally:
        fastpath.configure(**prev)


def test_hier_gate_inert_single_node():
    """On one node ``MPIX_HIER_PIPE`` must be provably inert: payloads
    AND virtual times bit-identical to the gate-off run, under every
    combination of the other three gates."""
    baseline = _run_under_gates((False, False, False),
                                _twelve_collectives_body,
                                system="thetagpu", ranks_per_node=4)
    prev = fastpath.configure(hier_pipe=True)
    try:
        for combo in GATE_COMBOS:
            fastpath.STATS.reset()
            candidate = _run_under_gates(combo, _twelve_collectives_body,
                                         system="thetagpu", ranks_per_node=4)
            assert fastpath.STATS.snapshot()["route_hier"] == 0
            _assert_bit_identical(baseline, candidate,
                                  combo + ("hier",), 4)
    finally:
        fastpath.configure(**prev)


def test_hier_multi_node_payload_parity():
    """Across nodes the hierarchy route must change *times only*:
    payloads stay bit-identical to the flat route, and the route
    counters prove the hierarchy actually ran."""
    off, snap_off = _run_hier(hier=False)
    on, snap_on = _run_hier(hier=True)
    assert snap_off["route_hier"] == 0
    assert snap_on["route_hier"] > 0
    assert snap_on["hier_stripe_ops"] > 0
    for rank, (a, b) in enumerate(zip(off, on)):
        for i, ((data_a, _), (data_b, _)) in enumerate(zip(a, b)):
            assert data_a == data_b, \
                f"hier: rank {rank} payload {i} differs from flat"


def test_hier_multi_node_coop_bit_identical():
    """With the hierarchy gate on, the cooperative scheduler must agree
    with the thread scheduler to the bit — payloads and virtual
    times — under every combination of the other gates."""
    for combo in [(False, False, False), (True, True, True)]:
        thread, _ = _run_hier(hier=True, combo=combo)
        coop, _ = _run_hier(hier=True, coop=True, combo=combo)
        for rank, (a, b) in enumerate(zip(thread, coop)):
            for i, ((da, ta), (db, tb)) in enumerate(zip(a, b)):
                assert da == db, \
                    f"gates={combo}: rank {rank} payload {i} differs"
                assert ta == tb, \
                    f"gates={combo}: rank {rank} clock after op {i} differs"


#: the full gate registry, in GATE_ENV order: 2^9 = 512 combinations.
ALL_GATES = ("plan_cache", "group_fusion", "zero_copy", "trace",
             "coop_sched", "hier_pipe", "hetero", "online_tune", "elastic")


def _run_under_all_gates(combo):
    prev = fastpath.configure(**dict(zip(ALL_GATES, combo)))
    try:
        return runtime.run(_twelve_collectives_body, system="thetagpu",
                           nodes=1, ranks_per_node=4)
    finally:
        fastpath.configure(**prev)


def _assert_all_gate_parity(combos):
    baseline = _run_under_all_gates((False,) * 9)
    for combo in combos:
        candidate = _run_under_all_gates(combo)
        _assert_bit_identical(baseline, candidate,
                              dict(zip(ALL_GATES, combo)), 4)


def test_new_gates_inert_fast():
    """Fast CI leg of the 2^9 matrix: the online tuner (below its
    warm-up — each collective runs once per size here) and the elastic
    error model (no faults injected) must be provably inert, alone and
    together, under either scheduler.  Payloads AND virtual times."""
    _assert_all_gate_parity([
        (True, True, True, False, coop, False, False, tune, elastic)
        for tune in (False, True)
        for elastic in (False, True)
        for coop in (False, True)])


@pytest.mark.slow
def test_all_nine_gates_bit_identical_full():
    """The full 2^9 = 512 gate matrix: every combination of all nine
    MPIX_* gates produces payloads and virtual times bit-identical to
    the all-off run on a single-node hybrid job.  Every gate is either
    pure wall-clock (plan cache, fusion, zero copy), observational
    (trace), an execution-model swap (coop scheduler), inert off its
    trigger (hier: one node; hetero: one vendor; online tuner: below
    warm-up; elastic: no faults) — so the whole product is inert."""
    _assert_all_gate_parity(
        [c for c in itertools.product([False, True], repeat=9)
         if any(c)])


def test_configure_restores():
    """fastpath.configure returns the previous states and restores."""
    before = fastpath.gates()
    prev = fastpath.configure(plan_cache=False, zero_copy=False)
    assert prev == before
    assert not fastpath.plans_enabled()
    assert not fastpath.zero_copy_enabled()
    assert fastpath.fusion_enabled() == before["group_fusion"]
    fastpath.configure(**prev)
    assert fastpath.gates() == before
