"""OMB harness, pt2pt and collective benchmarks, stacks, Habana port."""

import pytest

from repro.errors import ConfigError, HardwareError
from repro.hw.systems import make_system
from repro.omb.collective import COLLECTIVE_BENCHMARKS, osu_allreduce
from repro.omb.habana import (
    alloc_device_buffer,
    hpu_alloc,
    hpu_free,
    synapse_acquire,
    synapse_device_count,
)
from repro.omb.harness import OMBConfig, aggregate_latency, timed_loop
from repro.omb.pt2pt import osu_bibw, osu_bw, osu_latency
from repro.omb.stacks import STACK_NAMES, make_stack, series_label
from repro.sim.engine import Engine

CFG = OMBConfig(sizes=(64, 65536), warmup=1, iterations=2)


class TestHarness:
    def test_config_sized(self):
        cfg = OMBConfig(sizes=(4, 64, 1024, 65536)).sized(64, 1024)
        assert cfg.sizes == (64, 1024)

    def test_timed_loop_measures(self, thetagpu1, spmd):
        def body(ctx):
            def op():
                ctx.clock.advance(10.0)

            return timed_loop(ctx, OMBConfig(warmup=2, iterations=5),
                              lambda: None, op)

        assert spmd(thetagpu1, body, nranks=1)[0] == pytest.approx(10.0)

    def test_aggregate_latency(self, thetagpu1, spmd):
        def body(ctx):
            return aggregate_latency(ctx, "k", 64, float(ctx.rank + 1),
                                     ctx.size)

        stats = spmd(thetagpu1, body, nranks=4)[0]
        assert stats.avg_us == pytest.approx(2.5)
        assert stats.min_us == 1.0
        assert stats.max_us == 4.0


class TestPt2pt:
    def test_latency_increases_with_size(self, thetagpu1, spmd):
        out = spmd(thetagpu1,
                   lambda ctx: osu_latency(ctx, "nccl", CFG), nranks=2)[0]
        assert out[65536] > out[64]

    def test_idle_ranks_return_empty(self, thetagpu1, spmd):
        out = spmd(thetagpu1,
                   lambda ctx: osu_latency(ctx, "nccl", CFG), nranks=3)
        assert out[2] == {}

    def test_bw_below_link_capacity(self, thetagpu1, spmd):
        out = spmd(thetagpu1, lambda ctx: osu_bw(ctx, "nccl", CFG), nranks=2)[0]
        assert out[65536] < 146000  # cannot exceed raw NVSwitch

    def test_bibw_between_1x_and_2x(self, thetagpu1, spmd):
        bw = spmd(thetagpu1, lambda ctx: osu_bw(ctx, "nccl", CFG), nranks=2)[0]
        bibw = spmd(thetagpu1, lambda ctx: osu_bibw(ctx, "nccl", CFG),
                    nranks=2)[0]
        assert bw[65536] < bibw[65536] < 2 * bw[65536]

    def test_inter_node_latency_higher(self, thetagpu2, spmd):
        intra = spmd(thetagpu2, lambda ctx: osu_latency(ctx, "nccl", CFG),
                     nranks=2)[0]
        inter = spmd(thetagpu2, lambda ctx: osu_latency(ctx, "nccl", CFG),
                     nranks=2, ranks_per_node=1)[0]
        assert inter[65536] > intra[65536]


class TestCollectiveBenchmarks:
    @pytest.mark.parametrize("coll", sorted(COLLECTIVE_BENCHMARKS))
    def test_each_collective_runs_on_hybrid(self, thetagpu1, spmd, coll):
        bench = COLLECTIVE_BENCHMARKS[coll]

        def body(ctx):
            return bench(ctx, make_stack(ctx, "hybrid", "nccl"), CFG)

        stats = spmd(thetagpu1, body, nranks=4)[0]
        expected = {0} if coll == "barrier" else {64, 65536}
        assert set(stats) == expected
        assert all(s.avg_us > 0 for s in stats.values())

    def test_pure_ccl_stack(self, thetagpu1, spmd):
        def body(ctx):
            return osu_allreduce(ctx, make_stack(ctx, "ccl", "nccl"), CFG)

        stats = spmd(thetagpu1, body, nranks=4)[0]
        # CCL small-message latency floor ~ NCCL launch overhead
        assert stats[64].avg_us > 20.0

    def test_hybrid_small_beats_pure_ccl(self, thetagpu1, spmd):
        def body(ctx, stack):
            return osu_allreduce(ctx, make_stack(ctx, stack, "nccl"), CFG)

        hybrid = Engine(thetagpu1, nranks=4).run(body, "hybrid")[0]
        ccl = Engine(thetagpu1, nranks=4).run(body, "ccl")[0]
        assert hybrid[64].avg_us < ccl[64].avg_us

    def test_openmpi_slower_than_hybrid(self, thetagpu1):
        def body(ctx, stack):
            return osu_allreduce(ctx, make_stack(ctx, stack, "nccl"), CFG)

        hybrid = Engine(thetagpu1, nranks=4).run(body, "hybrid")[0]
        ucx = Engine(thetagpu1, nranks=4).run(body, "openmpi")[0]
        assert ucx[64].avg_us > hybrid[64].avg_us


class TestStacks:
    def test_all_names_buildable(self, thetagpu1, spmd):
        def body(ctx):
            return [type(make_stack(ctx, n, "nccl")).__name__
                    for n in STACK_NAMES]

        names = spmd(thetagpu1, body, nranks=2)[0]
        assert len(names) == len(STACK_NAMES)

    def test_unknown_stack(self, thetagpu1, spmd):
        def body(ctx):
            try:
                make_stack(ctx, "mvapich3")
            except ConfigError:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=1) == ["rejected"]

    def test_series_labels(self):
        assert series_label("hybrid", "nccl") == "Proposed Hybrid xCCL"
        assert series_label("ccl", "msccl") == "Pure MSCCL"
        assert series_label("pure-xccl", "hccl") == \
            "Proposed xCCL w/ Pure HCCL"

    def test_default_backend_by_vendor(self, voyager1, spmd):
        def body(ctx):
            stack = make_stack(ctx, "ccl", None)
            return stack.comm.backend.name

        assert spmd(voyager1, body, nranks=2)[0] == "hccl"


class TestHabanaPort:
    def test_device_count(self):
        assert synapse_device_count(make_system("voyager", 2)) == 16
        assert synapse_device_count(make_system("thetagpu", 1)) == 0

    def test_acquire_rejects_non_gaudi(self):
        with pytest.raises(HardwareError):
            synapse_acquire(make_system("thetagpu", 1).devices[0])

    def test_hpu_alloc_free(self, voyager1):
        dev = voyager1.devices[0]
        before = dev.allocated_bytes
        buf = hpu_alloc(dev, 4096)
        assert buf.on_device
        assert dev.allocated_bytes == before + 4096
        hpu_free(buf)
        assert dev.allocated_bytes == before

    def test_hpu_free_rejects_foreign(self, thetagpu1):
        buf = thetagpu1.devices[0].malloc(64)
        with pytest.raises(HardwareError):
            hpu_free(buf)

    def test_alloc_device_buffer_dispatch(self, voyager1, thetagpu1):
        assert alloc_device_buffer(voyager1.devices[0], 64).on_device
        assert alloc_device_buffer(thetagpu1.devices[0], 64).on_device

    def test_hpu_buffers_flow_through_mpi(self, voyager1, spmd):
        """The paper's port: Habana buffers through standard MPI."""
        from repro.core.runtime import world_communicator
        from repro.mpi import SUM

        def body(ctx):
            comm = world_communicator(ctx)
            buf = hpu_alloc(ctx.device, 1 << 20)
            buf.array[:] = 1
            out = hpu_alloc(ctx.device, 1 << 20)
            comm.Allreduce(buf, out, SUM)
            return int(out.array[0])

        assert spmd(voyager1, body, nranks=4) == [4] * 4


class TestCLI:
    def test_collective_cli(self, capsys):
        from repro.omb.cli import main
        assert main(["allreduce", "--system", "thetagpu", "--sizes", "4:1K",
                     "--iterations", "2", "--warmup", "1"]) == 0
        out = capsys.readouterr().out
        assert "osu_allreduce" in out
        assert "1K" in out

    def test_pt2pt_cli(self, capsys):
        from repro.omb.cli import main
        assert main(["latency", "--system", "mri", "--sizes", "4:64",
                     "--iterations", "2"]) == 0
        assert "Latency" in capsys.readouterr().out

    def test_stats_flag_prints_and_resets(self, capsys):
        """--stats prints gate states plus per-stage dispatch counters,
        reset at the start of each sweep so runs don't bleed together."""
        from repro import fastpath
        from repro.omb.cli import main

        fastpath.STATS.note_dispatch(xccl=True)  # stale pre-sweep noise
        assert main(["allreduce", "--system", "thetagpu", "--sizes", "4:1K",
                     "--iterations", "2", "--warmup", "1", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Fast-path gates:" in out
        state = "on" if fastpath.plans_enabled() else "off"
        assert f"plan_cache={state}" in out
        assert "dispatch_calls" in out
        assert "route_xccl" in out
        # counters in the report come from this sweep only
        first = fastpath.STATS.snapshot()["dispatch_calls"]
        assert main(["allreduce", "--system", "thetagpu", "--sizes", "4:1K",
                     "--iterations", "2", "--warmup", "1", "--stats"]) == 0
        assert fastpath.STATS.snapshot()["dispatch_calls"] == first
        capsys.readouterr()

    def test_stats_off_by_default(self, capsys):
        from repro.omb.cli import main
        assert main(["allreduce", "--system", "thetagpu", "--sizes", "4:64",
                     "--iterations", "1", "--warmup", "0"]) == 0
        assert "Fast-path gates:" not in capsys.readouterr().out


class TestMultiPairBandwidth:
    CFG = OMBConfig(sizes=(1 << 20,), warmup=1, iterations=2)

    def test_intra_pairs_scale_linearly(self, thetagpu1):
        """Four pairs behind NVSwitch own private wires: aggregate
        equals four single-pair bandwidths."""
        from repro.omb.pt2pt import osu_mbw_mr
        agg = Engine(thetagpu1, nranks=8).run(
            lambda ctx: osu_mbw_mr(ctx, "nccl", self.CFG))[0]
        single = Engine(thetagpu1, nranks=2).run(
            lambda ctx: osu_bw(ctx, "nccl", self.CFG))[0]
        assert agg[1 << 20] == pytest.approx(4 * single[1 << 20], rel=0.05)

    def test_inter_pairs_share_the_nic(self, thetagpu2):
        """Four pairs across two nodes funnel through one NIC pair:
        aggregate is NIC-bound, far below 4x a single pair.  The pairs
        run unsynchronized, so whether their transfers overlap on the
        shared wire depends on thread scheduling — assert on the
        most-contended of five runs."""
        from repro.omb.pt2pt import osu_mbw_mr
        agg = min(
            Engine(thetagpu2, nranks=8, ranks_per_node=4).run(
                lambda ctx: osu_mbw_mr(ctx, "nccl", self.CFG))[0][1 << 20]
            for _ in range(5))
        single = Engine(thetagpu2, nranks=2, ranks_per_node=1).run(
            lambda ctx: osu_bw(ctx, "nccl", self.CFG))[0][1 << 20]
        assert agg < 1.5 * single
        assert agg == pytest.approx(single, rel=0.25)

    def test_odd_rank_count_rejected(self, thetagpu1, spmd):
        from repro.omb.pt2pt import osu_mbw_mr

        def body(ctx):
            try:
                osu_mbw_mr(ctx, "nccl", self.CFG)
            except ValueError:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=3) == ["rejected"] * 3
