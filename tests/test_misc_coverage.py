"""Coverage for the smaller surfaces: errors, requests, configs,
new OMB benches, compression knob."""

import pytest

from repro import errors
from repro.dl import HorovodConfig, train
from repro.dl.models import tiny_mlp
from repro.hw.cluster import PathScope
from repro.hw.systems import make_system
from repro.mpi import Request, Status
from repro.mpi.config import host_staged, mvapich_gpu, openmpi_ucx
from repro.mpi.request import waitall, waitany
from repro.omb.collective import osu_barrier, osu_gather, osu_scatter
from repro.omb.harness import OMBConfig
from repro.omb.stacks import make_stack
from repro.sim.engine import Engine


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_ccl_errors_carry_result_codes(self):
        assert errors.CCLUnsupportedDatatype.result == "xcclUnsupportedDatatype"
        assert errors.CCLInvalidUsage.result == "xcclInvalidUsage"

    def test_rank_failed_formats(self):
        err = errors.RankFailedError({1: ValueError("x"), 0: KeyError("y")})
        assert "0" in str(err) and "1" in str(err)
        assert err.failures[1].args == ("x",)


class TestRequestHelpers:
    def test_completed_request(self):
        status = Status(source=1, tag=2, count=3, nbytes=12)
        req = Request.completed(status)
        assert req.done
        assert req.wait() is status
        assert req.test() == (True, status)

    def test_waitall_order(self):
        statuses = [Status(source=i) for i in range(3)]
        reqs = [Request.completed(s) for s in statuses]
        assert waitall(reqs) == statuses

    def test_waitany_prefers_ready(self):
        ready = Request.completed(Status(source=7))
        calls = []

        def never(blocking):
            calls.append(blocking)
            return None if not blocking else Status(source=0)

        pending = Request(never)
        idx, status = waitany([pending, ready])
        assert idx == 1
        assert status.source == 7

    def test_waitany_empty(self):
        from repro.errors import MPIError
        with pytest.raises(MPIError):
            waitany([])


class TestMPIConfig:
    def test_effective_beta_scopes(self):
        cfg = mvapich_gpu()
        assert cfg.effective_beta(PathScope.LOCAL, 1000.0) == 1000.0
        assert cfg.effective_beta(PathScope.INTER, 21000.0) == \
            pytest.approx(21000.0 * cfg.inter_bw_eff)
        # intra channel cap binds on fat links
        assert cfg.effective_beta(PathScope.INTRA, 146000.0) == \
            cfg.intra_channel_cap_bpus

    def test_personality_names(self):
        assert mvapich_gpu().name == "mpix"
        assert openmpi_ucx().name == "openmpi+ucx"
        assert host_staged().gpu_direct is False

    def test_with_copies(self):
        cfg = mvapich_gpu().with_(send_overhead_us=9.0)
        assert cfg.send_overhead_us == 9.0
        assert mvapich_gpu().send_overhead_us != 9.0

    def test_eager_threshold_by_scope(self):
        cfg = mvapich_gpu().with_(eager_threshold_intra=1,
                                  eager_threshold_inter=2)
        assert cfg.eager_threshold(PathScope.INTRA) == 1
        assert cfg.eager_threshold(PathScope.INTER) == 2


class TestNewOMBBenches:
    CFG = OMBConfig(sizes=(64, 4096), warmup=1, iterations=2)

    def test_gather_sweep(self, thetagpu1, spmd):
        def body(ctx):
            return osu_gather(ctx, make_stack(ctx, "hybrid"), self.CFG)

        stats = spmd(thetagpu1, body, nranks=4)[0]
        assert all(s.avg_us > 0 for s in stats.values())

    def test_scatter_sweep(self, thetagpu1, spmd):
        def body(ctx):
            return osu_scatter(ctx, make_stack(ctx, "mpi"), self.CFG)

        stats = spmd(thetagpu1, body, nranks=4)[0]
        assert set(stats) == {64, 4096}

    def test_barrier_single_point(self, thetagpu1, spmd):
        def body(ctx):
            return osu_barrier(ctx, make_stack(ctx, "hybrid"), self.CFG)

        stats = spmd(thetagpu1, body, nranks=8)[0]
        assert list(stats) == [0]
        assert stats[0].avg_us > 0

    def test_barrier_on_pure_ccl(self, thetagpu1, spmd):
        def body(ctx):
            return osu_barrier(ctx, make_stack(ctx, "ccl"), self.CFG)

        stats = spmd(thetagpu1, body, nranks=4)[0]
        assert stats[0].avg_us > 20.0  # CCL launch floor


class TestCompressionKnob:
    def _run(self, cluster, ratio):
        def body(ctx):
            stack = make_stack(ctx, "hybrid")
            cfg = HorovodConfig(overlap=0.0, compression_ratio=ratio)
            return train(ctx, stack, tiny_mlp(), 32, steps=2, config=cfg)

        return Engine(cluster, nranks=4).run(body)[0]

    def test_compression_charges_engine_time(self, thetagpu1):
        off = self._run(thetagpu1, 1.0)
        on = self._run(thetagpu1, 8.0)
        # tiny model on a fat link: engine cost dominates, comm grows
        assert on.comm_time_us != off.comm_time_us

    def test_compression_shrinks_wire_on_slow_links(self):
        mri = make_system("mri", 2)
        from repro.dl.models import resnet50

        def body(ctx, ratio):
            stack = make_stack(ctx, "hybrid")
            cfg = HorovodConfig(overlap=0.0, compression_ratio=ratio)
            return train(ctx, stack, resnet50(), 32, steps=1, config=cfg)

        off = Engine(mri, nranks=4).run(body, 1.0)[0]
        on = Engine(mri, nranks=4).run(body, 4.0)[0]
        assert on.comm_time_us < off.comm_time_us


class TestEngineMisc:
    def test_run_spmd_forwards_args(self, thetagpu1):
        from repro.sim.engine import run_spmd

        def body(ctx, a, b=1):
            return ctx.rank + a + b

        assert run_spmd(thetagpu1, body, 2, None, False, 10.0, 5, b=2) == \
            [7, 8]

    def test_next_sequence_unique(self, thetagpu1):
        engine = Engine(thetagpu1, nranks=1)
        seqs = {engine.next_sequence() for _ in range(100)}
        assert len(seqs) == 100
