"""CCL backends: collectives, p2p groups, capability checks, timing."""

import numpy as np

from repro.errors import (CCLInvalidUsage, CCLUnsupportedDatatype, CCLUnsupportedOperation)
from repro.mpi import DOUBLE_COMPLEX, FLOAT, INT32, MAX, SUM
from repro.mpi.ops import LAND, user_op
from repro.xccl import api as xapi
from repro.xccl.registry import get_backend


def make_comm(ctx, backend=None):
    uid = xapi.xcclGetUniqueId(ctx, ctx.size, "test")
    return xapi.xcclCommInitRank(ctx, list(range(ctx.size)), ctx.rank, uid,
                                 backend)


class TestBuiltinCollectives:
    def test_allreduce_sum(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            n = 256
            s = ctx.device.zeros(n)
            s.fill(float(ctx.rank + 1))
            r = ctx.device.zeros(n)
            xapi.xcclAllReduce(s, r, n, FLOAT, SUM, comm)
            xapi.xcclStreamSynchronize(comm)
            return r.array[0]

        assert spmd(thetagpu1, body, nranks=4) == [10.0] * 4

    def test_allreduce_in_place(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            buf = ctx.device.zeros(8)
            buf.fill(1.0)
            xapi.xcclAllReduce(None, buf, 8, FLOAT, SUM, comm)
            return buf.array[0]

        assert spmd(thetagpu1, body, nranks=3) == [3.0] * 3

    def test_allreduce_max(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            s = ctx.device.zeros(4)
            s.fill(float(ctx.rank))
            r = ctx.device.zeros(4)
            xapi.xcclAllReduce(s, r, 4, FLOAT, MAX, comm)
            return r.array[0]

        assert spmd(thetagpu1, body, nranks=5) == [4.0] * 5

    def test_broadcast(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            buf = ctx.device.zeros(16)
            if ctx.rank == 2:
                buf.fill(9.0)
            xapi.xcclBroadcast(buf, 16, FLOAT, 2, comm)
            return buf.array[0]

        assert spmd(thetagpu1, body, nranks=4) == [9.0] * 4

    def test_reduce_lands_at_root_only(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            s = ctx.device.zeros(4)
            s.fill(1.0)
            r = ctx.device.zeros(4)
            r.fill(-1.0)
            xapi.xcclReduce(s, r, 4, FLOAT, SUM, 1, comm)
            return r.array[0]

        out = spmd(thetagpu1, body, nranks=3)
        assert out[1] == 3.0
        assert out[0] == -1.0 and out[2] == -1.0

    def test_allgather(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            s = ctx.device.zeros(4)
            s.fill(float(ctx.rank))
            r = ctx.device.zeros(4 * ctx.size)
            xapi.xcclAllGather(s, r, 4, FLOAT, comm)
            return np.array_equal(r.array,
                                  np.repeat(np.arange(ctx.size, dtype=float), 4))

        assert all(spmd(thetagpu1, body, nranks=4))

    def test_reduce_scatter(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            p = ctx.size
            s = ctx.device.zeros(4 * p)
            s.array[:] = np.repeat(np.arange(p, dtype=float), 4)
            r = ctx.device.zeros(4)
            xapi.xcclReduceScatter(s, r, 4, FLOAT, SUM, comm)
            return r.array[0]

        out = spmd(thetagpu1, body, nranks=4)
        assert out == [0.0, 4.0, 8.0, 12.0]

    def test_collective_advances_clock_uniformly(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            b = ctx.device.zeros(1024)
            xapi.xcclAllReduce(None, b, 1024, FLOAT, SUM, comm)
            xapi.xcclStreamSynchronize(comm)
            return ctx.now

        times = spmd(thetagpu1, body, nranks=4)
        assert len(set(times)) == 1  # CCL completion is synchronized
        assert times[0] > 20.0       # at least the NCCL launch floor


class TestCapabilityChecks:
    def test_dtype_unsupported(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            z = ctx.device.zeros(4, dtype=np.complex128)
            try:
                xapi.xcclAllReduce(z, z, 4, DOUBLE_COMPLEX, SUM, comm)
            except CCLUnsupportedDatatype:
                return "rejected"
            return "accepted"

        assert spmd(thetagpu1, body, nranks=2) == ["rejected"] * 2

    def test_hccl_rejects_int(self, voyager1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            b = ctx.device.zeros(4, dtype=np.int32)
            try:
                xapi.xcclAllReduce(b, b, 4, INT32, SUM, comm)
            except CCLUnsupportedDatatype:
                return "rejected"
            return "accepted"

        assert spmd(voyager1, body, nranks=2) == ["rejected"] * 2

    def test_hccl_accepts_float(self, voyager1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            b = ctx.device.zeros(4)
            b.fill(1.0)
            xapi.xcclAllReduce(None, b, 4, FLOAT, SUM, comm)
            return b.array[0]

        assert spmd(voyager1, body, nranks=2) == [2.0, 2.0]

    def test_user_op_rejected(self, thetagpu1, spmd):
        op = user_op(lambda a, b: a + b)

        def body(ctx):
            comm = make_comm(ctx)
            b = ctx.device.zeros(4)
            try:
                xapi.xcclAllReduce(None, b, 4, FLOAT, op, comm)
            except CCLUnsupportedOperation:
                return "rejected"
            return "accepted"

        assert spmd(thetagpu1, body, nranks=2) == ["rejected"] * 2

    def test_logical_op_rejected(self):
        assert not get_backend("nccl").supports_op(LAND)

    def test_vendor_mismatch(self, voyager1, spmd):
        def body(ctx):
            try:
                make_comm(ctx, "nccl")  # NCCL cannot drive Gaudi
            except CCLInvalidUsage:
                return "rejected"
            return "accepted"

        assert spmd(voyager1, body, nranks=2) == ["rejected"] * 2

    def test_destroyed_comm_rejected(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            xapi.xcclCommDestroy(comm)
            b = ctx.device.zeros(4)
            try:
                xapi.xcclAllReduce(None, b, 4, FLOAT, SUM, comm)
            except CCLInvalidUsage:
                return "rejected"
            return "accepted"

        assert spmd(thetagpu1, body, nranks=2) == ["rejected"] * 2


class TestGroupedP2P:
    def test_sendrecv_pair(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            peer = 1 - ctx.rank
            s = ctx.device.zeros(8)
            s.fill(float(ctx.rank + 5))
            r = ctx.device.zeros(8)
            xapi.xcclGroupStart()
            xapi.xcclSend(s, 8, FLOAT, peer, comm)
            xapi.xcclRecv(r, 8, FLOAT, peer, comm)
            xapi.xcclGroupEnd()
            xapi.xcclStreamSynchronize(comm)
            return r.array[0]

        assert spmd(thetagpu1, body, nranks=2) == [6.0, 5.0]

    def test_alltoallv_listing1(self, thetagpu1, spmd):
        """Listing 1 of the paper, verbatim structure."""

        def body(ctx):
            comm = make_comm(ctx)
            p = ctx.size
            sendcnts = [(ctx.rank + d) % 3 + 1 for d in range(p)]
            recvcnts = [(s + ctx.rank) % 3 + 1 for s in range(p)]
            sdispls = np.concatenate([[0], np.cumsum(sendcnts)[:-1]]).tolist()
            rdispls = np.concatenate([[0], np.cumsum(recvcnts)[:-1]]).tolist()
            sendbuf = ctx.device.zeros(sum(sendcnts))
            for d in range(p):
                sendbuf.array[sdispls[d]:sdispls[d] + sendcnts[d]] = \
                    ctx.rank * 10 + d
            recvbuf = ctx.device.zeros(sum(recvcnts))
            xapi.xcclGroupStart()
            for r in range(p):
                xapi.xcclSend(sendbuf.view(sdispls[r], sendcnts[r]),
                              sendcnts[r], FLOAT, r, comm)
                xapi.xcclRecv(recvbuf.view(rdispls[r], recvcnts[r]),
                              recvcnts[r], FLOAT, r, comm)
            xapi.xcclGroupEnd()
            xapi.xcclStreamSynchronize(comm)
            for s in range(p):
                got = recvbuf.array[rdispls[s]:rdispls[s] + recvcnts[s]]
                if not np.all(got == s * 10 + ctx.rank):
                    return False
            return True

        assert all(spmd(thetagpu1, body, nranks=4))

    def test_self_send(self, thetagpu1, spmd):
        def body(ctx):
            comm = make_comm(ctx)
            s = ctx.device.zeros(4)
            s.fill(7.0)
            r = ctx.device.zeros(4)
            xapi.xcclGroupStart()
            xapi.xcclSend(s, 4, FLOAT, ctx.rank, comm)
            xapi.xcclRecv(r, 4, FLOAT, ctx.rank, comm)
            xapi.xcclGroupEnd()
            return r.array[0]

        assert spmd(thetagpu1, body, nranks=2) == [7.0, 7.0]

    def test_group_end_without_start(self, thetagpu1, spmd):
        def body(ctx):
            try:
                xapi.xcclGroupEnd()
            except CCLInvalidUsage:
                return "rejected"
            return "accepted"

        assert spmd(thetagpu1, body, nranks=1) == ["rejected"]

    def test_group_amortizes_launch(self, thetagpu1, spmd):
        """One group of k sends pays one launch; k groups pay k."""

        def body(ctx):
            comm = make_comm(ctx)
            peer = 1 - ctx.rank
            bufs = [ctx.device.zeros(16) for _ in range(4)]
            t0 = ctx.now
            xapi.xcclGroupStart()
            for b in bufs:
                if ctx.rank == 0:
                    xapi.xcclSend(b, 16, FLOAT, peer, comm)
                else:
                    xapi.xcclRecv(b, 16, FLOAT, peer, comm)
            xapi.xcclGroupEnd()
            grouped = ctx.now - t0
            t1 = ctx.now
            for b in bufs:
                if ctx.rank == 0:
                    xapi.xcclSend(b, 16, FLOAT, peer, comm)
                else:
                    xapi.xcclRecv(b, 16, FLOAT, peer, comm)
            ungrouped = ctx.now - t1
            return grouped < ungrouped

        assert all(spmd(thetagpu1, body, nranks=2))

    def test_ordering_across_groups(self, thetagpu1, spmd):
        """Sends to the same peer match receives in program order."""

        def body(ctx):
            comm = make_comm(ctx)
            if ctx.rank == 0:
                for value in (1.0, 2.0, 3.0):
                    b = ctx.device.zeros(4)
                    b.fill(value)
                    xapi.xcclSend(b, 4, FLOAT, 1, comm)
                return None
            got = []
            for _ in range(3):
                b = ctx.device.zeros(4)
                xapi.xcclRecv(b, 4, FLOAT, 0, comm)
                got.append(b.array[0])
            return got

        assert spmd(thetagpu1, body, nranks=2)[1] == [1.0, 2.0, 3.0]


class TestBackendIdentity:
    def test_versions(self):
        assert get_backend("nccl").version.startswith("2.18")
        assert get_backend("nccl-2.11").version == "2.11.4"
        assert "2.12.12" in get_backend("msccl").version

    def test_params_names(self):
        for name in ("nccl", "rccl", "hccl", "msccl"):
            assert get_backend(name).params.name in (name, "nccl")

    def test_launch_floor_ordering(self):
        # HCCL's launch overhead dwarfs the others (paper: 270 vs 20-28)
        assert get_backend("hccl").params.launch_us > \
            10 * get_backend("nccl").params.launch_us
