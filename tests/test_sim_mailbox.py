"""Mailbox matching semantics (single-threaded behaviours)."""

import pytest

from repro.sim.mailbox import ANY_SOURCE, ANY_TAG, Mailbox, Message, ProgressMonitor


def _msg(src=0, tag=0, **meta):
    return Message(src=src, dst=1, tag=tag, data=b"", depart_us=0.0,
                   arrival_us=1.0, nbytes=0, meta=meta)


@pytest.fixture
def box():
    return Mailbox(1, ProgressMonitor(timeout_s=0.5))


class TestMatching:
    def test_fifo_per_source_tag(self, box):
        box.post(_msg(tag=7, idx=1))
        box.post(_msg(tag=7, idx=2))
        assert box.try_match(src=0, tag=7).meta["idx"] == 1
        assert box.try_match(src=0, tag=7).meta["idx"] == 2

    def test_tag_filter(self, box):
        box.post(_msg(tag=1))
        assert box.try_match(src=0, tag=2) is None
        assert box.try_match(src=0, tag=1) is not None

    def test_source_filter(self, box):
        box.post(_msg(src=3))
        assert box.try_match(src=2) is None
        assert box.try_match(src=3) is not None

    def test_any_source_any_tag(self, box):
        box.post(_msg(src=5, tag=9))
        assert box.try_match(src=ANY_SOURCE, tag=ANY_TAG) is not None

    def test_where_predicate(self, box):
        box.post(_msg(kind="a"))
        box.post(_msg(kind="b"))
        m = box.try_match(where=lambda m: m.meta.get("kind") == "b")
        assert m.meta["kind"] == "b"

    def test_probe_nondestructive(self, box):
        box.post(_msg(tag=4))
        assert box.probe(tag=4) is not None
        assert box.pending == 1
        assert box.try_match(tag=4) is not None
        assert box.pending == 0

    def test_match_returns_posted(self, box):
        box.post(_msg(tag=3))
        assert box.match(src=0, tag=3).tag == 3

    def test_deadlock_detection(self, box):
        from repro.errors import DeadlockError
        with pytest.raises(DeadlockError):
            box.match(src=0, tag=99)  # nothing will ever arrive


class TestProgressMonitor:
    def test_not_stalled_initially(self):
        assert not ProgressMonitor(10.0).stalled()

    def test_stall_latches(self):
        mon = ProgressMonitor(timeout_s=-1.0)  # instantly stale
        assert mon.stalled()
        mon.note_progress()
        assert mon.stalled()  # deadlock state is final
