"""Mailbox matching semantics (single-threaded behaviours)."""

import pytest

from repro.sim.mailbox import ANY_SOURCE, ANY_TAG, Mailbox, Message, ProgressMonitor


def _msg(src=0, tag=0, **meta):
    return Message(src=src, dst=1, tag=tag, data=b"", depart_us=0.0,
                   arrival_us=1.0, nbytes=0, meta=meta)


@pytest.fixture
def box():
    return Mailbox(1, ProgressMonitor(timeout_s=0.5))


class TestMatching:
    def test_fifo_per_source_tag(self, box):
        box.post(_msg(tag=7, idx=1))
        box.post(_msg(tag=7, idx=2))
        assert box.try_match(src=0, tag=7).meta["idx"] == 1
        assert box.try_match(src=0, tag=7).meta["idx"] == 2

    def test_tag_filter(self, box):
        box.post(_msg(tag=1))
        assert box.try_match(src=0, tag=2) is None
        assert box.try_match(src=0, tag=1) is not None

    def test_source_filter(self, box):
        box.post(_msg(src=3))
        assert box.try_match(src=2) is None
        assert box.try_match(src=3) is not None

    def test_any_source_any_tag(self, box):
        box.post(_msg(src=5, tag=9))
        assert box.try_match(src=ANY_SOURCE, tag=ANY_TAG) is not None

    def test_where_predicate(self, box):
        box.post(_msg(kind="a"))
        box.post(_msg(kind="b"))
        m = box.try_match(where=lambda m: m.meta.get("kind") == "b")
        assert m.meta["kind"] == "b"

    def test_probe_nondestructive(self, box):
        box.post(_msg(tag=4))
        assert box.probe(tag=4) is not None
        assert box.pending == 1
        assert box.try_match(tag=4) is not None
        assert box.pending == 0

    def test_match_returns_posted(self, box):
        box.post(_msg(tag=3))
        assert box.match(src=0, tag=3).tag == 3

    def test_deadlock_detection(self, box):
        from repro.errors import DeadlockError
        with pytest.raises(DeadlockError):
            box.match(src=0, tag=99)  # nothing will ever arrive


class TestBulkTransport:
    def test_post_many_preserves_order(self, box):
        box.post_many([_msg(tag=7, idx=i) for i in range(4)])
        got = [box.try_match(src=0, tag=7).meta["idx"] for _ in range(4)]
        assert got == [0, 1, 2, 3]
        assert box.pending == 0

    def test_post_many_empty_is_noop(self, box):
        box.post_many([])
        assert box.pending == 0

    def test_wildcard_sees_global_posting_order(self, box):
        """ANY_SOURCE/ANY_TAG matches the oldest message across
        buckets, even interleaved with bulk posts."""
        box.post(_msg(src=1, tag=1, idx="a"))
        box.post_many([_msg(src=2, tag=2, idx="b"),
                       _msg(src=1, tag=1, idx="c")])
        box.post(_msg(src=3, tag=3, idx="d"))
        order = [box.try_match(src=ANY_SOURCE, tag=ANY_TAG).meta["idx"]
                 for _ in range(4)]
        assert order == ["a", "b", "c", "d"]

    def test_wildcard_source_exact_tag(self, box):
        box.post(_msg(src=1, tag=5, idx=1))
        box.post(_msg(src=2, tag=6, idx=2))
        box.post(_msg(src=3, tag=5, idx=3))
        assert box.try_match(src=ANY_SOURCE, tag=5).meta["idx"] == 1
        assert box.try_match(src=ANY_SOURCE, tag=5).meta["idx"] == 3
        assert box.try_match(src=ANY_SOURCE, tag=6).meta["idx"] == 2

    def test_match_many_fills_spec_order(self, box):
        box.post_many([_msg(src=2, tag=0, idx="y"),
                       _msg(src=1, tag=0, idx="x")])
        a, b = box.match_many([(1, ANY_TAG, None), (2, ANY_TAG, None)])
        assert (a.meta["idx"], b.meta["idx"]) == ("x", "y")

    def test_match_many_with_predicates(self, box):
        box.post_many([_msg(src=1, tag=0, seq=2),
                       _msg(src=1, tag=0, seq=1)])
        want = [(1, ANY_TAG, lambda m, s=s: m.meta["seq"] == s)
                for s in (1, 2)]
        got = box.match_many(want)
        assert [m.meta["seq"] for m in got] == [1, 2]

    def test_match_many_empty(self, box):
        assert box.match_many([]) == []

    def test_match_many_deadlock(self, box):
        from repro.errors import DeadlockError
        box.post(_msg(src=1, tag=1))
        with pytest.raises(DeadlockError):
            box.match_many([(1, 1, None), (1, 99, None)])

    def test_patched_detection_and_fallback(self, box):
        """A per-instance post wrapper (fault injection) is visible via
        ``patched`` and still sees every bulk-posted message."""
        assert not box.patched
        seen = []
        orig = box.post

        def wrapper(msg):
            seen.append(msg.meta.get("idx"))
            orig(msg)

        box.post = wrapper
        assert box.patched
        box.post_many([_msg(idx=1), _msg(idx=2)])
        assert seen == [1, 2]
        assert box.pending == 2
        del box.post
        assert not box.patched


class TestAdaptiveWait:
    def test_match_wakes_promptly_on_post(self, box):
        """A waiter blocked in match() returns soon after the post —
        the adaptive backoff must not sleep through the notify."""
        import threading
        import time
        out = {}

        def waiter():
            out["msg"] = box.match(src=0, tag=1)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        t0 = time.perf_counter()
        box.post(_msg(tag=1))
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert time.perf_counter() - t0 < 0.5
        assert out["msg"].tag == 1

    def test_backoff_constants_sane(self):
        assert Mailbox.FIRST_POLL_S < Mailbox.POLL_S


class TestProgressMonitor:
    def test_not_stalled_initially(self):
        assert not ProgressMonitor(10.0).stalled()

    def test_stall_latches(self):
        mon = ProgressMonitor(timeout_s=-1.0)  # instantly stale
        assert mon.stalled()
        mon.note_progress()
        assert mon.stalled()  # deadlock state is final
