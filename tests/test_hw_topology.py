"""Links, nodes, clusters, paths, and system presets."""

import pytest

from repro.errors import ConfigError, TopologyError
from repro.hw.cluster import PathScope
from repro.hw.links import IB_HDR, NVSWITCH, PCIE_MRI, LinkModel, LinkKind
from repro.hw.systems import TABLE1, make_system, mri, system_names, thetagpu, voyager


class TestLinkModel:
    def test_time_is_alpha_plus_wire(self):
        l = LinkModel(LinkKind.NVSWITCH, alpha_us=2.0, beta_bpus=1000.0)
        assert l.time_us(0) == 2.0
        assert l.time_us(1000) == 3.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NVSWITCH.time_us(-1)

    def test_bandwidth_approaches_beta(self):
        bw = NVSWITCH.bandwidth_MBps(1 << 30)
        assert bw == pytest.approx(NVSWITCH.beta_bpus, rel=0.01)

    def test_bidir_full_duplex_unchanged(self):
        assert IB_HDR.bidir_time_us(1 << 20) == IB_HDR.time_us(1 << 20)

    def test_bidir_half_duplex_slower(self):
        assert NVSWITCH.bidir_time_us(1 << 20) > NVSWITCH.time_us(1 << 20)

    def test_shared_divides_beta(self):
        shared = IB_HDR.shared(4)
        assert shared.beta_bpus == pytest.approx(IB_HDR.beta_bpus / 4)

    def test_shared_within_ports_free(self):
        assert NVSWITCH.shared(1).beta_bpus == NVSWITCH.beta_bpus

    def test_shared_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            IB_HDR.shared(0)

    def test_effective_beta_with_store_forward(self):
        # PCIe has a host bounce: harmonic composition
        eff = PCIE_MRI.effective_beta(6000.0)
        assert eff < 6000.0
        assert eff == pytest.approx(1 / (1 / 6000 + 1 / 24000))

    def test_effective_beta_without_store_forward(self):
        assert NVSWITCH.effective_beta(1234.0) == 1234.0


class TestNode:
    def test_intra_path_switched(self):
        node = thetagpu(1).nodes[0]
        links = node.intra_path_links(0, 5)
        assert len(links) == 2  # dev -> switch -> dev
        assert all(l.kind == LinkKind.NVSWITCH for l in links)

    def test_intra_path_bus(self):
        node = mri(1).nodes[0]
        links = node.intra_path_links(0, 1)
        assert all(l.kind == LinkKind.PCIE for l in links)

    def test_same_device_empty_path(self):
        assert thetagpu(1).nodes[0].intra_path_links(3, 3) == []

    def test_device_to_nic(self):
        node = voyager(1).nodes[0]
        links = node.device_to_nic_links(2)
        assert len(links) >= 1

    def test_bad_device_index(self):
        with pytest.raises(TopologyError):
            thetagpu(1).nodes[0].device(8)


class TestCluster:
    def test_path_scopes(self, thetagpu2):
        c = thetagpu2
        assert c.path(c.devices[0], c.devices[0]).scope == PathScope.LOCAL
        assert c.path(c.devices[0], c.devices[3]).scope == PathScope.INTRA
        assert c.path(c.devices[0], c.devices[9]).scope == PathScope.INTER

    def test_inter_path_carries_fabric(self, thetagpu2):
        c = thetagpu2
        p = c.path(c.devices[0], c.devices[8])
        assert p.fabric is not None
        assert p.fabric.kind == LinkKind.IB_HDR

    def test_intra_path_no_fabric(self, thetagpu2):
        c = thetagpu2
        assert c.path(c.devices[0], c.devices[1]).fabric is None

    def test_device_for_rank_block_placement(self, thetagpu2):
        c = thetagpu2
        assert c.device_for_rank(0) is c.nodes[0].devices[0]
        assert c.device_for_rank(8) is c.nodes[1].devices[0]

    def test_device_for_rank_custom_ppn(self, thetagpu2):
        c = thetagpu2
        assert c.device_for_rank(1, ranks_per_node=1) is c.nodes[1].devices[0]

    def test_rank_out_of_range(self, thetagpu2):
        with pytest.raises(TopologyError):
            thetagpu2.device_for_rank(16)

    def test_transfer_resources_switched_pair(self, thetagpu2):
        c = thetagpu2
        res = c.transfer_resources(c.devices[0], c.devices[1])
        assert res == [("intra", 0, 0, 1, "fwd")]
        rev = c.transfer_resources(c.devices[1], c.devices[0])
        assert rev == [("intra", 0, 0, 1, "rev")]

    def test_transfer_resources_bus(self, mri2):
        c = mri2
        res = c.transfer_resources(c.devices[0], c.devices[1])
        assert ("bus", 0, 0, "out") in res

    def test_transfer_resources_inter(self, thetagpu2):
        c = thetagpu2
        res = c.transfer_resources(c.devices[0], c.devices[8])
        assert ("nic", 0, 0, "out") in res
        assert ("nic", 1, 0, "in") in res

    def test_transfer_resources_multi_rail(self):
        from repro.hw.systems import make_system
        c = make_system("thetagpu", 2, nics=4)
        # devices map to rails round-robin by local index: flows from
        # different devices leave on different NICs and don't contend
        res = c.transfer_resources(c.devices[1], c.devices[8 + 5])
        assert ("nic", 0, 1, "out") in res
        assert ("nic", 1, 5 % 4, "in") in res

    def test_transfer_resources_local_empty(self, thetagpu2):
        c = thetagpu2
        assert c.transfer_resources(c.devices[0], c.devices[0]) == []

    def test_contended_path(self, thetagpu2):
        c = thetagpu2
        p = c.path(c.devices[0], c.devices[1])
        assert p.contended(4).beta_bpus < p.beta_bpus


class TestSystems:
    def test_names(self):
        assert system_names() == ["aurora", "mri", "thetagpu", "voyager"]

    def test_unknown_system(self):
        with pytest.raises(ConfigError):
            make_system("frontier")

    @pytest.mark.parametrize("name,devs", [("thetagpu", 8), ("mri", 2),
                                           ("voyager", 8)])
    def test_devices_per_node(self, name, devs):
        assert make_system(name, 1).device_count == devs

    def test_node_limits(self):
        with pytest.raises(ConfigError):
            thetagpu(25)
        with pytest.raises(ConfigError):
            voyager(0)

    def test_table1_covers_all_systems(self):
        assert set(TABLE1) == {"thetagpu", "mri", "voyager"}

    def test_multi_node_naming(self):
        c = make_system("mri", 3)
        assert [n.name for n in c.nodes] == ["mri00", "mri01", "mri02"]
