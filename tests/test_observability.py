"""The observability layer: stage tracing, transport labels, export.

Pins the PR's contract end to end: every stage of the dispatch
pipeline leaves a marker, every transport path labels its events
(including the fused whole-group exchange and derived communicators),
the Chrome-trace exporter emits a Perfetto-loadable document, tracing
never perturbs payloads or virtual times, and ``fastpath.STATS`` no
longer leaks between engine runs.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import fastpath
from repro.core.dispatch import DispatchMode
from repro.core.hybrid import HybridDispatcher
from repro.core.runtime import world_communicator
from repro.dl.horovod import HorovodConfig
from repro.dl.models import tiny_mlp
from repro.dl.trainer import train
from repro.mpi import SUM, Communicator
from repro.mpi.coll import MPICollDispatcher
from repro.obs.metrics import (
    aggregate_doc,
    aggregate_traces,
    bucket_label,
    bucket_of,
    diff_reports,
    validate_doc,
)
from repro.omb.stacks import make_stack
from repro.sim.engine import Engine
from repro.sim.timeline import chrome_trace, engine_chrome_trace

#: big enough to cross the thetagpu 1-node tuning crossover (routes
#: xccl); SMALL stays below it (routes mpi:tuning)
BIG = 65536
SMALL = 16


def _stage_labels(traces):
    return {ev.label for t in traces for ev in t.of_kind("stage")}


def _labels(traces, kind):
    return [ev.label for t in traces for ev in t.of_kind(kind)]


def _run_traced(cluster, body, nranks=4, trace=True):
    engine = Engine(cluster, nranks=nranks, trace=trace,
                    progress_timeout_s=20.0)
    results = engine.run(body)
    return engine, results


def _allreduce_body(mode):
    def body(ctx):
        comm = world_communicator(ctx, mode=mode)
        s = ctx.device.zeros(BIG)
        r = ctx.device.zeros(BIG)
        comm.Allreduce(s, r, SUM)                 # big: xccl on hybrid
        small_s = ctx.device.zeros(SMALL)
        small_r = ctx.device.zeros(SMALL)
        comm.Allreduce(small_s, small_r, SUM)     # small: mpi:tuning
        comm.Allreduce(s, r, SUM)                 # repeat: plan hit
    return body


class TestPipelineStageTracing:
    """Tentpole: the five pipeline stages each leave a trace marker."""

    def test_all_five_stages_marked_on_hybrid_run(self, thetagpu1):
        # the plan:miss/plan:hit markers need the plan-cache gate on —
        # pin it so the check-gates MPIX_PLAN_CACHE=0 leg passes too
        prev = fastpath.configure(plan_cache=True)
        try:
            engine, _ = _run_traced(
                thetagpu1, _allreduce_body(DispatchMode.HYBRID))
        finally:
            fastpath.configure(**prev)
        stages = _stage_labels(engine.traces())
        assert "validate:allreduce" in stages          # stage 1
        assert "capability:ok" in stages               # stage 2
        assert "route:xccl" in stages                  # stage 3 (big)
        assert "route:mpi:tuning" in stages            # stage 3 (small)
        assert "plan:miss" in stages                   # stage 4, first call
        assert "plan:hit" in stages                    # stage 4, repeat
        labels = set(_labels(engine.traces(), "dispatch"))  # stage 5
        assert "execute:allreduce:xccl:nccl" in labels
        assert "execute:allreduce:mpi:tuning" in labels

    def test_pure_mpi_mode_skips_capability(self, thetagpu1):
        engine, _ = _run_traced(
            thetagpu1, _allreduce_body(DispatchMode.PURE_MPI))
        stages = _stage_labels(engine.traces())
        assert "capability:skipped" in stages
        assert "route:mpi:mode" in stages
        assert "route:xccl" not in stages

    def test_capability_fallback_reason_marked(self, thetagpu1):
        """A host-resident buffer fails the §3.2 capability check; the
        marker and the execute span both carry the reason."""
        def body(ctx):
            comm = world_communicator(ctx, mode=DispatchMode.PURE_XCCL)
            s = np.zeros(BIG, dtype=np.float32)      # host memory
            r = np.zeros(BIG, dtype=np.float32)
            comm.Allreduce(s, r, SUM)

        engine, _ = _run_traced(thetagpu1, body)
        stages = _stage_labels(engine.traces())
        assert "capability:host_buffer" in stages
        assert "route:mpi:host_buffer" in stages
        assert "execute:allreduce:mpi:host_buffer" in set(
            _labels(engine.traces(), "dispatch"))

    def test_untraced_run_records_nothing(self, thetagpu1):
        prev = fastpath.set_trace_enabled(False)
        try:
            engine, _ = _run_traced(
                thetagpu1, _allreduce_body(DispatchMode.HYBRID), trace=False)
        finally:
            fastpath.set_trace_enabled(prev)
        assert all(len(t) == 0 for t in engine.traces())

    def test_plan_cache_off_marks_plan_off(self, thetagpu1):
        prev = fastpath.set_plans_enabled(False)
        try:
            engine, _ = _run_traced(
                thetagpu1, _allreduce_body(DispatchMode.HYBRID))
        finally:
            fastpath.set_plans_enabled(prev)
        stages = _stage_labels(engine.traces())
        assert "plan:off" in stages
        assert "plan:hit" not in stages and "plan:miss" not in stages


class TestTransportAndDerivedComms:
    """Satellite: both transport fast paths and every derived
    communicator record events (previously the fused built-ins and the
    exchange path were silent)."""

    @staticmethod
    def _alltoall_body(ctx):
        comm = world_communicator(ctx, mode=DispatchMode.PURE_XCCL)
        p, r = comm.size, comm.rank
        s = ctx.device.zeros(256 * p)
        s.array[:] = r
        out = ctx.device.zeros(256 * p)
        comm.Alltoall(s, out, count=256)

    def test_group_exchange_transport_labeled(self, thetagpu1):
        prev = fastpath.set_fusion_enabled(True)
        fastpath.STATS.reset()
        try:
            engine, _ = _run_traced(thetagpu1, self._alltoall_body)
            stats = fastpath.STATS.snapshot()
        finally:
            fastpath.set_fusion_enabled(prev)
        assert stats["fusion_exchanges"] > 0      # the path engaged
        sends = _labels(engine.traces(), "ccl-send")
        recvs = _labels(engine.traces(), "ccl-recv")
        assert sends and set(sends) == {"exchange"}
        assert recvs and set(recvs) == {"exchange"}

    def test_unfused_transport_labeled(self, thetagpu1):
        prev = fastpath.set_fusion_enabled(False)
        try:
            engine, _ = _run_traced(thetagpu1, self._alltoall_body)
        finally:
            fastpath.set_fusion_enabled(prev)
        sends = _labels(engine.traces(), "ccl-send")
        assert sends and set(sends) == {"unfused"}

    def test_fused_builtin_records_ccl_span(self, thetagpu1):
        """The five direct-CCL collectives run entirely inside a fused
        rendezvous; they must still leave a per-call ``ccl`` span."""
        def body(ctx):
            comm = world_communicator(ctx, mode=DispatchMode.PURE_XCCL)
            s = ctx.device.zeros(BIG)
            r = ctx.device.zeros(BIG)
            comm.Allreduce(s, r, SUM)
            comm.Bcast(r, root=0)

        engine, _ = _run_traced(thetagpu1, body)
        for t in engine.traces():
            ccl = t.of_kind("ccl")
            assert {ev.label for ev in ccl} == {"nccl:allreduce",
                                                "nccl:bcast"}
            assert all(ev.nbytes > 0 for ev in ccl)

    def test_dup_and_split_comms_record_events(self, thetagpu1):
        """Collectives on Dup/Split communicators land in the same
        per-rank trace as world traffic (no silent drops)."""
        def body(ctx):
            comm = world_communicator(ctx, mode=DispatchMode.PURE_XCCL)
            layer = comm.coll.layer
            dup = comm.Dup()
            dup.coll = HybridDispatcher(layer, DispatchMode.PURE_XCCL)
            half = comm.Split(color=comm.rank % 2, key=comm.rank)
            half.coll = HybridDispatcher(layer, DispatchMode.PURE_XCCL)
            s = ctx.device.zeros(BIG)
            r = ctx.device.zeros(BIG)
            dup.Allreduce(s, r, SUM)
            half.Allreduce(s, r, SUM)

        engine, _ = _run_traced(thetagpu1, body)
        for t in engine.traces():
            # one fused span per collective per comm: dup + split half
            assert len(t.of_kind("ccl")) == 2
            assert len(t.of_kind("dispatch")) == 2

    def test_hierarchical_subcomms_record_events(self, thetagpu2):
        """The node-leader algorithm's cached ``_hier_comms`` run over
        plain p2p; every rank's trace must show the traffic."""
        captured = {}

        def body(ctx):
            comm = Communicator.world(ctx)
            comm.coll = MPICollDispatcher(force="hierarchical")
            s = ctx.device.zeros(1024)
            s.array[:] = 1.0
            r = ctx.device.zeros(1024)
            comm.Allreduce(s, r, SUM)
            captured[ctx.rank] = float(r.array[0])

        engine, _ = _run_traced(thetagpu2, body, nranks=8)
        assert all(v == 8.0 for v in captured.values())
        for t in engine.traces():
            assert len(t.of_kind("send")) > 0
            assert len(t.of_kind("recv")) > 0


class TestChromeExport:
    """Satellite: golden schema of the exporter + parity."""

    def _doc(self, cluster, nranks=4):
        engine, _ = _run_traced(
            cluster, _allreduce_body(DispatchMode.HYBRID), nranks=nranks)
        return engine_chrome_trace(engine, meta={"tool": "test"})

    def test_golden_schema(self, thetagpu1):
        doc = json.loads(json.dumps(self._doc(thetagpu1)))
        assert validate_doc(doc) == []
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"tool": "test"}
        events = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i")]
        assert events
        for e in events:
            assert {"name", "cat", "pid", "tid", "ts", "args"} <= set(e)
            assert e["args"]["kind"]
        last = {}
        for e in events:
            track = (e["pid"], e["tid"])
            assert e["ts"] >= last.get(track, float("-inf"))
            last[track] = e["ts"]

    def test_stage_markers_are_instants(self, thetagpu1):
        doc = self._doc(thetagpu1)
        stages = [e for e in doc["traceEvents"]
                  if e.get("args", {}).get("kind") == "stage"]
        assert stages
        assert all(e["ph"] == "i" and e["s"] == "t" for e in stages)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices and all(e["dur"] > 0 for e in slices)

    def test_one_pid_per_node(self, thetagpu2):
        engine, _ = _run_traced(
            thetagpu2, _allreduce_body(DispatchMode.HYBRID), nranks=16)
        doc = engine_chrome_trace(engine)
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] != "M"}
        assert pids == {0, 1}
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("name") == "process_name"}
        assert names == {"mpix node 0", "mpix node 1"}
        # ranks 0-7 on node 0, 8-15 on node 1 (default placement)
        by_pid = {}
        for e in doc["traceEvents"]:
            if e.get("name") == "thread_name" and "tid" in e:
                by_pid.setdefault(e["pid"], set()).add(e["tid"])
        assert by_pid[0] == set(range(8)) and by_pid[1] == set(range(8, 16))

    def test_single_pid_without_node_map(self, thetagpu1):
        engine, _ = _run_traced(
            thetagpu1, _allreduce_body(DispatchMode.HYBRID))
        doc = chrome_trace(engine.traces())
        assert {e["pid"] for e in doc["traceEvents"]} == {0}

    def test_tracing_parity_bit_identical(self, thetagpu1):
        """Tracing is observation only: payloads and virtual times are
        bit-identical with tracing off, on, and via the MPIX_TRACE
        gate."""
        def body(ctx):
            comm = world_communicator(ctx)
            p, r = comm.size, comm.rank
            s = ctx.device.zeros(BIG)
            s.array[:] = np.arange(BIG, dtype=np.float32) * 0.25 + r
            out = ctx.device.zeros(BIG)
            comm.Allreduce(s, out, SUM)
            a2a = ctx.device.zeros(64 * p)
            a2a.array[:] = r
            a2a_r = ctx.device.zeros(64 * p)
            comm.Alltoall(a2a, a2a_r, count=64)
            return (out.array.tobytes(), a2a_r.array.tobytes(), ctx.now)

        def run(trace):
            engine = Engine(thetagpu1, nranks=4, trace=trace,
                            progress_timeout_s=20.0)
            return engine.run(body)

        prev = fastpath.set_trace_enabled(False)
        try:
            off = run(False)
            on = run(True)
            fastpath.set_trace_enabled(True)
            gated = run(False)
        finally:
            fastpath.set_trace_enabled(prev)
        assert off == on == gated


class TestMetricsAggregation:
    """The per-collective aggregator: traces and docs agree."""

    def test_report_from_traces_and_doc_agree(self, thetagpu1):
        # pins plan:hit counts, so the plan-cache gate must be on even
        # under the check-gates MPIX_PLAN_CACHE=0 leg
        prev = fastpath.configure(plan_cache=True)
        try:
            engine, _ = _run_traced(
                thetagpu1, _allreduce_body(DispatchMode.HYBRID))
        finally:
            fastpath.configure(**prev)
        from_traces = aggregate_traces(engine.traces())
        from_doc = aggregate_doc(engine_chrome_trace(engine))
        assert from_traces.ranks == from_doc.ranks == 4
        m_t = from_traces.collectives["allreduce"]
        m_d = from_doc.collectives["allreduce"]
        assert m_t.count == m_d.count == 12          # 3 calls x 4 ranks
        assert m_t.routes == m_d.routes
        assert m_t.routes["xccl:nccl"] == 8
        assert m_t.routes["mpi:tuning"] == 4
        assert m_t.bytes_total == m_d.bytes_total > 0
        assert m_t.histogram == m_d.histogram
        assert sum(m_t.histogram) == 12
        assert from_traces.stages["plan:hit"] == from_doc.stages["plan:hit"]

    def test_diff_reports(self, thetagpu1):
        engine, _ = _run_traced(
            thetagpu1, _allreduce_body(DispatchMode.HYBRID))
        report = aggregate_traces(engine.traces())
        rows = diff_reports(report, report)
        row = next(r for r in rows if r[0] == "allreduce")
        assert row[1] == "12->12" and row[4] == 0.0

    def test_histogram_buckets(self):
        assert bucket_of(0.5) == 0 and bucket_label(0) == "<1us"
        assert bucket_of(1.0) == 1 and bucket_label(1) == "<2us"
        assert bucket_of(3.0) == 2
        assert bucket_of(1e12) == 23            # clamped to the last bucket

    def test_validate_doc_flags_problems(self):
        assert validate_doc({}) == ["traceEvents missing or not a list"]
        bad = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 5.0,
             "dur": 1.0},
            {"name": "b", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0,
             "dur": 0.0},
        ]}
        problems = validate_doc(bad)
        assert any("non-positive dur" in p for p in problems)
        assert any("not monotonic" in p for p in problems)


class TestStatsAutoReset:
    """Satellite: the process-global STATS singleton no longer leaks
    between engine runs."""

    def _run_once(self, cluster):
        engine = Engine(cluster, nranks=4, progress_timeout_s=20.0)
        engine.run(_allreduce_body(DispatchMode.HYBRID))
        return fastpath.STATS.snapshot()

    def test_engine_construction_resets_counters(self, thetagpu1):
        fastpath.STATS.note_dispatch(xccl=True)
        assert fastpath.STATS.snapshot()["dispatch_calls"] > 0
        Engine(thetagpu1, nranks=2)
        snap = fastpath.STATS.snapshot()
        assert all(v == 0 for v in snap.values())

    def test_back_to_back_runs_start_from_zero(self, thetagpu1):
        first = self._run_once(thetagpu1)
        second = self._run_once(thetagpu1)
        assert first["dispatch_calls"] == 12      # 3 calls x 4 ranks
        assert second == first                    # no accumulation


class TestTraceGate:
    """MPIX_TRACE: the fourth GATE_ENV entry, default off."""

    def test_registered_in_gate_env(self):
        assert fastpath.GATE_ENV["trace"] == "MPIX_TRACE"
        assert "trace" in fastpath.gates()

    def test_default_tracks_environment(self):
        # default off — unless the check-gates CI leg exports MPIX_TRACE=1
        expected = os.environ.get("MPIX_TRACE", "0").strip().lower() \
            not in ("0", "false", "off", "no", "")
        fresh = {name: fastpath._env_gate(var, fastpath._GATE_DEFAULTS.get(
            name, "1")) for name, var in fastpath.GATE_ENV.items()}
        assert fresh["trace"] == expected

    def test_gate_enables_engine_tracing(self, thetagpu1):
        prev = fastpath.set_trace_enabled(True)
        try:
            engine, _ = _run_traced(
                thetagpu1, _allreduce_body(DispatchMode.HYBRID), trace=False)
        finally:
            fastpath.set_trace_enabled(prev)
        assert engine.trace_enabled
        assert all(len(t) > 0 for t in engine.traces())

    def test_configure_round_trips_trace(self):
        prev = fastpath.configure(trace=True)
        assert fastpath.trace_enabled()
        fastpath.configure(**prev)
        assert fastpath.trace_enabled() == prev["trace"]


class TestTrainerStepMarkers:
    """dl/trainer.py emits Horovod step-boundary spans."""

    def test_step_spans_recorded(self, thetagpu1):
        def body(ctx):
            stack = make_stack(ctx, "hybrid", "nccl")
            return train(ctx, stack, tiny_mlp(), 32, steps=3,
                         config=HorovodConfig())

        engine, results = _run_traced(thetagpu1, body, nranks=4)
        assert all(r.img_per_sec > 0 for r in results)
        for t in engine.traces():
            steps = t.of_kind("step")
            assert [ev.label for ev in steps] == [
                "horovod-step:0", "horovod-step:1", "horovod-step:2"]
            assert all(ev.duration_us > 0 for ev in steps)


class TestCLIs:
    """mpix-omb --trace and the mpix-trace subcommands."""

    @pytest.fixture
    def trace_file(self, tmp_path, capsys):
        from repro.omb.cli import main as omb_main
        path = tmp_path / "omb.json"
        assert omb_main(["allreduce", "alltoallv", "--system", "thetagpu",
                         "--nodes", "1", "--sizes", "16K:64K",
                         "--iterations", "1", "--warmup", "0",
                         "--trace", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_omb_trace_is_valid(self, trace_file):
        doc = json.loads(trace_file.read_text())
        assert validate_doc(doc) == []
        assert doc["otherData"]["benchmarks"] == ["allreduce", "alltoallv"]
        report = aggregate_doc(doc)
        assert {"allreduce", "alltoallv"} <= set(report.collectives)

    def test_trace_cli_validate_and_summarize(self, trace_file, capsys):
        from repro.obs.cli import main as trace_main
        assert trace_main(["validate", str(trace_file)]) == 0
        assert capsys.readouterr().out.startswith("OK:")
        assert trace_main(["summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "allreduce" in out and "alltoallv" in out
        assert "Pipeline stage" in out

    def test_trace_cli_diff(self, trace_file, capsys):
        from repro.obs.cli import main as trace_main
        assert trace_main(["diff", str(trace_file), str(trace_file)]) == 0
        assert "allreduce" in capsys.readouterr().out

    def test_trace_cli_rejects_garbage(self, tmp_path, capsys):
        from repro.obs.cli import main as trace_main
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert trace_main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_omb_rejects_unknown_benchmark(self, capsys):
        from repro.omb.cli import main as omb_main
        with pytest.raises(SystemExit):
            omb_main(["allreduce", "nosuch"])
