"""Reduction ops and validity rules."""

import numpy as np
import pytest

from repro.errors import MPIOpError
from repro.mpi import datatypes as dt
from repro.mpi.ops import (
    BAND, BOR, BXOR, LAND, LOR, LXOR, MAX, MIN, PREDEFINED_OPS, PROD, SUM,
    user_op,
)


class TestArithmetic:
    def test_sum(self):
        a = np.array([1.0, 2.0])
        assert np.all(SUM(a, a) == [2.0, 4.0])

    def test_prod(self):
        assert np.all(PROD(np.array([2, 3]), np.array([4, 5])) == [8, 15])

    def test_min_max(self):
        a, b = np.array([1, 9]), np.array([5, 5])
        assert np.all(MIN(a, b) == [1, 5])
        assert np.all(MAX(a, b) == [5, 9])


class TestLogicalAndBitwise:
    def test_land_preserves_dtype(self):
        a = np.array([2, 0], dtype=np.int32)
        out = LAND(a, np.array([1, 1], dtype=np.int32))
        assert out.dtype == np.int32
        assert np.all(out == [1, 0])

    def test_lor_lxor(self):
        a, b = np.array([1, 0, 1]), np.array([0, 0, 1])
        assert np.all(LOR(a, b) == [1, 0, 1])
        assert np.all(LXOR(a, b) == [1, 0, 0])

    def test_bitwise(self):
        a, b = np.array([0b1100]), np.array([0b1010])
        assert BAND(a, b)[0] == 0b1000
        assert BOR(a, b)[0] == 0b1110
        assert BXOR(a, b)[0] == 0b0110


class TestValidation:
    def test_min_on_complex_rejected(self):
        with pytest.raises(MPIOpError):
            MIN.validate(dt.DOUBLE_COMPLEX)

    def test_sum_on_complex_allowed(self):
        SUM.validate(dt.DOUBLE_COMPLEX)

    def test_bitwise_on_float_rejected(self):
        with pytest.raises(MPIOpError):
            BAND.validate(dt.FLOAT)

    def test_bitwise_on_int_allowed(self):
        BXOR.validate(dt.INT32)

    def test_sum_on_logical_rejected(self):
        with pytest.raises(MPIOpError):
            SUM.validate(dt.BOOL)

    def test_user_op_takes_anything(self):
        op = user_op(lambda a, b: a + b)
        op.validate(dt.DOUBLE_COMPLEX)
        op.validate(dt.BOOL)


class TestUserOp:
    def test_not_predefined(self):
        assert not user_op(lambda a, b: a).predefined

    def test_commutativity_flag(self):
        assert not user_op(lambda a, b: a, commutative=False).commutative

    def test_registry(self):
        assert PREDEFINED_OPS["MPI_SUM"] is SUM
        assert len(PREDEFINED_OPS) == 10
