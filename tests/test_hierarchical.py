"""Topology-aware (hierarchical) collectives."""

import numpy as np
import pytest

from repro.mpi import MAX, SUM, Communicator
from repro.mpi.coll import MPICollDispatcher
from repro.mpi.coll.hierarchical import node_comms


def comm_with(ctx, force=None):
    comm = Communicator.world(ctx)
    comm.coll = MPICollDispatcher(force=force)
    return comm


class TestNodeComms:
    def test_partitioning(self, thetagpu2, spmd):
        def body(ctx):
            comm = comm_with(ctx)
            local, leaders = node_comms(comm)
            return (local.size, leaders is not None and leaders.size or 0)

        out = spmd(thetagpu2, body, nranks=16)
        assert out[0] == (8, 2)       # leader on node 0
        assert out[1] == (8, 0)       # non-leader
        assert out[8] == (8, 2)       # leader on node 1

    def test_cached(self, thetagpu2, spmd):
        def body(ctx):
            comm = comm_with(ctx)
            a = node_comms(comm)
            b = node_comms(comm)
            return a is b

        assert all(spmd(thetagpu2, body, nranks=4))

    def test_uneven_nodes(self, thetagpu2, spmd):
        def body(ctx):
            comm = comm_with(ctx)
            local, leaders = node_comms(comm)
            return local.size

        out = spmd(thetagpu2, body, nranks=10)  # 8 + 2
        assert out[0] == 8 and out[9] == 2


class TestHierarchicalCorrectness:
    @pytest.mark.parametrize("nranks", [16, 12, 9])
    def test_allreduce(self, thetagpu2, spmd, nranks):
        def body(ctx):
            comm = comm_with(ctx, "hierarchical")
            n = 512
            s = ctx.device.zeros(n, dtype=np.float64)
            s.array[:] = np.arange(n) + ctx.rank
            r = ctx.device.zeros(n, dtype=np.float64)
            comm.Allreduce(s, r, SUM)
            expect = sum(np.arange(n) + k for k in range(comm.size))
            return np.allclose(r.array, expect)

        assert all(spmd(thetagpu2, body, nranks=nranks))

    @pytest.mark.parametrize("root", [0, 3, 9])
    def test_bcast_any_root(self, thetagpu2, spmd, root):
        def body(ctx):
            comm = comm_with(ctx, "hierarchical")
            buf = ctx.device.zeros(256)
            if ctx.rank == root:
                buf.array[:] = 42.0
            comm.Bcast(buf, root=root)
            return bool(np.all(buf.array == 42.0))

        assert all(spmd(thetagpu2, body, nranks=12))

    @pytest.mark.parametrize("root", [0, 5, 11])
    def test_reduce_any_root(self, thetagpu2, spmd, root):
        def body(ctx):
            comm = comm_with(ctx, "hierarchical")
            s = ctx.device.zeros(128)
            s.fill(float(ctx.rank))
            r = ctx.device.zeros(128)
            comm.Reduce(s, r, MAX, root=root)
            if ctx.rank != root:
                return True
            return bool(np.all(r.array == comm.size - 1))

        assert all(spmd(thetagpu2, body, nranks=12))

    def test_single_node_degenerates(self, thetagpu1, spmd):
        def body(ctx):
            comm = comm_with(ctx, "hierarchical")
            s = ctx.device.zeros(64)
            s.fill(1.0)
            r = ctx.device.zeros(64)
            comm.Allreduce(s, r, SUM)
            return r.array[0]

        assert spmd(thetagpu1, body, nranks=4) == [4.0] * 4


class TestHierarchicalPerformance:
    def test_beats_flat_ring_for_medium_multi_node(self, thetagpu2, spmd):
        """8 ranks/node over 2 nodes at 64 KB: the leader design pays
        one fabric exchange instead of a 30-step cross-node ring.
        (Flat recursive doubling with block placement is already
        near-optimal in fabric rounds, so the honest comparison for
        the leader design is the bandwidth algorithms.)"""
        n = 16384  # 64 KB of floats

        def body(ctx):
            comm_ring = comm_with(ctx, "ring")
            comm_hier = comm_with(ctx, "hierarchical")
            s = ctx.device.zeros(n)
            r = ctx.device.zeros(n)
            comm_ring.Barrier()
            t0 = ctx.now
            comm_ring.Allreduce(s, r, SUM)
            t_ring = ctx.now - t0
            # warm the cached sub-communicators outside the timing
            node_comms(comm_hier)
            comm_hier.Barrier()
            t1 = ctx.now
            comm_hier.Allreduce(s, r, SUM)
            return t_ring, ctx.now - t1

        t_ring, t_hier = spmd(thetagpu2, body, nranks=16)[0]
        assert t_hier < t_ring
