"""Zero-copy datapath: bit-identity, leaks, gate combos, fault safety.

``MPIX_ZERO_COPY`` may only change how fast the simulator runs — never
what it computes.  These tests pin that contract on every CCL stack:
payload bytes AND virtual clocks are bit-identical with the gate on and
off, borrowed views are never retained after completion, all 8
combinations of the three fast-path gates agree bit-for-bit on
randomized collective sequences, and fault injection degrades the
leased handoff to the copying path without ever corrupting a sender's
live buffer.
"""

from __future__ import annotations

import gc
import weakref

import numpy as np
import pytest

from repro import fastpath
from repro.core import runtime
from repro.errors import RankFailedError
from repro.mpi import SUM, Communicator
from repro.mpi.communicator import IN_PLACE
from repro.sim.engine import Engine
from repro.sim.faults import FaultPlan, with_faults

#: (system, backend, single-node ranks) — one per CCL the paper ports.
#: Single-node runs are exactly reproducible, which is what makes
#: bit-comparison valid.
STACKS = [
    ("thetagpu", None, 4),      # NCCL
    ("mri", None, 2),           # RCCL
    ("voyager", None, 4),       # HCCL
    ("thetagpu", "msccl", 4),   # MSCCL
]

#: large enough for the rendezvous protocol (eager threshold is 8 KiB)
RNDV = 1 << 12


def _datapath_body(mpx):
    """Exercise every leased path: the five CCL collectives (including
    in-place spellings), blocking rendezvous sends, deferred-eager
    sendrecv, and the fused group exchange; log payload bytes and the
    virtual clock after each call."""
    comm = mpx.COMM_WORLD
    ctx = comm.ctx
    p, r = comm.size, comm.rank
    log = []

    def snap(buf):
        log.append((buf.array.tobytes(), ctx.now))

    n = 128
    send = ctx.device.zeros(n, dtype=np.float32)
    send.array[:] = np.arange(n, dtype=np.float32) * 0.5 + r
    recv = ctx.device.zeros(n, dtype=np.float32)

    comm.Allreduce(send, recv, SUM)
    snap(recv)
    comm.Reduce(send, recv, SUM, root=1 % p)
    snap(recv)
    comm.Bcast(recv, root=0)
    snap(recv)

    ag = ctx.device.zeros(n * p, dtype=np.float32)
    comm.Allgather(send, ag, count=n)
    snap(ag)
    ag2 = ctx.device.zeros(n * p, dtype=np.float32)
    ag2.array[r * n:(r + 1) * n] = send.array
    comm.Allgather(IN_PLACE, ag2, count=n)
    snap(ag2)

    rs_s = ctx.device.zeros(n * p, dtype=np.float32)
    rs_s.array[:] = np.arange(n * p, dtype=np.float32) - 3 * r
    rs_r = ctx.device.zeros(n, dtype=np.float32)
    comm.Reduce_scatter_block(rs_s, rs_r, SUM)
    snap(rs_r)

    # deferred-eager + rendezvous sendrecv around the ring
    big_s = ctx.device.zeros(RNDV, dtype=np.float32)
    big_s.array[:] = r + 1
    big_r = ctx.device.zeros(RNDV, dtype=np.float32)
    comm.Sendrecv(send, (r + 1) % p, recv, (r - 1) % p)
    snap(recv)
    comm.Sendrecv(big_s, (r + 1) % p, big_r, (r - 1) % p)
    snap(big_r)

    # blocking rendezvous send/recv pairs (even ranks send first)
    peer = r ^ 1
    if peer < p:
        if r % 2 == 0:
            comm.Send(big_s, peer)
            comm.Recv(big_r, source=peer)
        else:
            comm.Recv(big_r, source=peer)
            comm.Send(big_s, peer)
        snap(big_r)

    # fused group exchange (alltoall routes through grouped send/recv)
    a2a_s = ctx.device.zeros(4 * p, dtype=np.float32)
    a2a_s.array[:] = np.arange(4 * p, dtype=np.float32) + 10 * r
    a2a_r = ctx.device.zeros(4 * p, dtype=np.float32)
    comm.Alltoall(a2a_s, a2a_r, count=4)
    snap(a2a_r)
    return log


def _compare_runs(off, on, rpn):
    assert len(on) == len(off) == rpn
    for rank, (a, b) in enumerate(zip(off, on)):
        assert len(a) == len(b)
        for i, ((data_a, t_a), (data_b, t_b)) in enumerate(zip(a, b)):
            assert data_a == data_b, f"rank {rank} payload {i} differs"
            assert t_a == t_b, f"rank {rank} clock after op {i} differs"


@pytest.mark.parametrize("system,backend,rpn", STACKS,
                         ids=[f"{s}-{b or 'native'}" for s, b, _ in STACKS])
def test_bit_identical_zero_copy_on_vs_off(system, backend, rpn):
    """Zero-copy on vs off: identical payload bytes AND virtual times
    for the whole datapath on every CCL stack."""
    def run():
        return runtime.run(_datapath_body, system=system, nodes=1,
                           ranks_per_node=rpn, backend=backend,
                           mode="pure_xccl")

    prev = fastpath.set_zero_copy_enabled(False)
    try:
        off = run()
        fastpath.set_zero_copy_enabled(True)
        fastpath.STATS.reset()
        on = run()
        stats = fastpath.STATS.snapshot()
    finally:
        fastpath.set_zero_copy_enabled(prev)

    # the leased paths must actually have engaged
    assert stats["copies_elided"] > 0
    assert stats["accumulator_reuses"] > 0
    _compare_runs(off, on, rpn)


_PROGRAM_OPS = ("allreduce", "allgather", "allgather_in_place",
                "reduce_scatter", "bcast", "alltoall", "sendrecv")


def _random_program(seed, length=8):
    rng = np.random.default_rng(seed)
    return [(str(rng.choice(_PROGRAM_OPS)),
             int(rng.integers(1, 6)) * 32,
             int(rng.integers(0, 1000)))
            for _ in range(length)]


def _program_body_factory(program):
    def body(mpx):
        comm = mpx.COMM_WORLD
        ctx = comm.ctx
        p, r = comm.size, comm.rank
        log = []
        for op, n, salt in program:
            send = ctx.device.zeros(n, dtype=np.float32)
            send.array[:] = (np.arange(n, dtype=np.float32) % 7) \
                + r * 0.25 + salt
            if op == "allreduce":
                out = ctx.device.zeros(n, dtype=np.float32)
                comm.Allreduce(send, out, SUM)
            elif op == "allgather":
                out = ctx.device.zeros(n * p, dtype=np.float32)
                comm.Allgather(send, out, count=n)
            elif op == "allgather_in_place":
                out = ctx.device.zeros(n * p, dtype=np.float32)
                out.array[r * n:(r + 1) * n] = send.array
                comm.Allgather(IN_PLACE, out, count=n)
            elif op == "reduce_scatter":
                big = ctx.device.zeros(n * p, dtype=np.float32)
                big.array[:] = np.arange(n * p, dtype=np.float32) + salt - r
                out = ctx.device.zeros(n, dtype=np.float32)
                comm.Reduce_scatter_block(big, out, SUM)
            elif op == "bcast":
                out = ctx.device.zeros(n, dtype=np.float32)
                if r == salt % p:
                    out.array[:] = send.array
                comm.Bcast(out, root=salt % p)
            elif op == "alltoall":
                big = ctx.device.zeros(n * p, dtype=np.float32)
                big.array[:] = np.arange(n * p, dtype=np.float32) + 10 * r
                out = ctx.device.zeros(n * p, dtype=np.float32)
                comm.Alltoall(big, out, count=n)
            else:  # sendrecv
                out = ctx.device.zeros(n, dtype=np.float32)
                comm.Sendrecv(send, (r + 1) % p, out, (r - 1) % p)
            log.append((out.array.tobytes(), ctx.now))
        return log
    return body


@pytest.mark.parametrize("seed", [7, 23])
def test_randomized_sequences_identical_under_all_gate_combos(seed):
    """All 8 combinations of plan-cache x fusion x zero-copy agree
    bit-for-bit (payloads and virtual times) on randomized collective
    sequences."""
    body = _program_body_factory(_random_program(seed))

    def run():
        return runtime.run(body, system="thetagpu", nodes=1,
                           ranks_per_node=4, mode="pure_xccl")

    prev = (fastpath.plans_enabled(), fastpath.fusion_enabled(),
            fastpath.zero_copy_enabled())
    reference = None
    try:
        for plans in (False, True):
            for fusion in (False, True):
                for zc in (False, True):
                    fastpath.set_plans_enabled(plans)
                    fastpath.set_fusion_enabled(fusion)
                    fastpath.set_zero_copy_enabled(zc)
                    got = run()
                    if reference is None:
                        reference = got
                    else:
                        _compare_runs(reference, got, 4)
    finally:
        fastpath.set_plans_enabled(prev[0])
        fastpath.set_fusion_enabled(prev[1])
        fastpath.set_zero_copy_enabled(prev[2])


def test_no_payload_refs_retained_after_completion():
    """After collectives, group flushes, and leased p2p complete, no
    CollectiveSlot, GroupExchangeSlot, or mailbox bucket may retain a
    reference to any payload array (borrowed views pin their base)."""
    refs = []

    def body(mpx):
        comm = mpx.COMM_WORLD
        ctx = comm.ctx
        p, r = comm.size, comm.rank
        send = ctx.device.zeros(256, dtype=np.float32)
        send.array[:] = r + 1
        out = ctx.device.zeros(256, dtype=np.float32)
        ag = ctx.device.zeros(256 * p, dtype=np.float32)
        comm.Allreduce(send, out, SUM)
        comm.Allgather(send, ag, count=256)
        a2a = ctx.device.zeros(64 * p, dtype=np.float32)
        a2a.array[:] = r
        a2a_r = ctx.device.zeros(64 * p, dtype=np.float32)
        comm.Alltoall(a2a, a2a_r, count=64)
        big_s = ctx.device.zeros(RNDV, dtype=np.float32)
        big_s.array[:] = r
        big_r = ctx.device.zeros(RNDV, dtype=np.float32)
        comm.Sendrecv(big_s, (r + 1) % p, big_r, (r - 1) % p)
        refs.extend(weakref.ref(a) for a in
                    (send.array, ag.array, a2a.array, big_s.array))
        return True

    prev = fastpath.set_zero_copy_enabled(True)
    try:
        assert all(runtime.run(body, system="thetagpu", nodes=1,
                               ranks_per_node=4, mode="pure_xccl"))
    finally:
        fastpath.set_zero_copy_enabled(prev)
    gc.collect()
    alive = [i for i, ref in enumerate(refs) if ref() is not None]
    assert not alive, f"payload arrays still referenced: {alive}"


def test_blocking_send_buffer_safe_to_reuse(thetagpu1):
    """A blocking rendezvous send with the lease active completes only
    after the receiver consumed the view: mutating the buffer right
    after Send returns must never corrupt the received data."""
    captured = {}

    def body(ctx):
        comm = Communicator.world(ctx)
        buf = ctx.device.zeros(RNDV)
        if ctx.rank == 0:
            buf.fill(7.0)
            comm.Send(buf, 1)
            buf.fill(-1.0)   # reuse immediately: lease must be settled
        else:
            comm.Recv(buf, source=0)
            captured["got"] = buf.array.copy()

    engine = Engine(thetagpu1, nranks=2, progress_timeout_s=10.0)
    prev = fastpath.set_zero_copy_enabled(True)
    fastpath.STATS.reset()
    try:
        engine.run(body)
        stats = fastpath.STATS.snapshot()
    finally:
        fastpath.set_zero_copy_enabled(prev)
    assert stats["copies_elided"] > 0
    assert (captured["got"] == 7.0).all()


def test_patched_mailbox_degrades_to_copying_path(thetagpu1):
    """Fault injection monkeypatches mailbox ``post``; the leased
    handoff must stand down (copies forced, not elided) and the
    delayed delivery must still see the original bytes even though the
    sender mutates its buffer right after Send returns."""
    captured = {}

    def body(ctx):
        comm = Communicator.world(ctx)
        buf = ctx.device.zeros(RNDV)
        if ctx.rank == 0:
            buf.fill(3.0)
            comm.Send(buf, 1)
            buf.fill(-5.0)
        else:
            comm.Recv(buf, source=0)
            captured["got"] = buf.array.copy()

    engine = Engine(thetagpu1, nranks=2, progress_timeout_s=10.0)
    with_faults(engine, FaultPlan().delay(0, 1, 250.0))
    prev = fastpath.set_zero_copy_enabled(True)
    fastpath.STATS.reset()
    try:
        engine.run(body)
        stats = fastpath.STATS.snapshot()
    finally:
        fastpath.set_zero_copy_enabled(prev)
    # exactly one degraded send -> exactly one forced copy: the escape
    # hatch must fire once per send, never double-count per handshake
    assert stats["copies_forced"] == 1
    assert stats["copies_elided"] == 0
    assert (captured["got"] == 3.0).all()


def test_fault_path_leaves_no_stale_lease(thetagpu1):
    """Degraded sends take the copying path up front: no PayloadLease
    may be created (let alone survive), and the sender's buffer must be
    released once the run completes."""
    from repro.sim.mailbox import PayloadLease
    refs = []

    def body(ctx):
        comm = Communicator.world(ctx)
        buf = ctx.device.zeros(RNDV)
        if ctx.rank == 0:
            buf.fill(9.0)
            comm.Send(buf, 1)
            refs.append(weakref.ref(buf.array))
        else:
            comm.Recv(buf, source=0)

    engine = Engine(thetagpu1, nranks=2, progress_timeout_s=10.0)
    with_faults(engine, FaultPlan().delay(0, 1, 250.0))
    prev = fastpath.set_zero_copy_enabled(True)
    fastpath.STATS.reset()
    try:
        engine.run(body)
        stats = fastpath.STATS.snapshot()
    finally:
        fastpath.set_zero_copy_enabled(prev)
    assert stats["copies_forced"] == 1
    gc.collect()
    leases = [o for o in gc.get_objects() if isinstance(o, PayloadLease)]
    assert not leases, f"{len(leases)} PayloadLease objects survived"
    assert all(ref() is None for ref in refs), \
        "sender payload array still referenced after the degraded send"


def test_rank_failure_leaves_live_buffers_intact(thetagpu1):
    """A dropped message deadlocks the receiver; the failure must not
    corrupt any sender's live buffer (borrowed views are read-only, so
    nothing downstream can scribble into caller memory)."""
    survivors = {}

    def body(ctx):
        comm = Communicator.world(ctx)
        if ctx.rank in (0, 1):
            peer = 1 - ctx.rank
            buf = ctx.device.zeros(RNDV)
            buf.fill(float(ctx.rank) + 1.0)
            out = ctx.device.zeros(RNDV)
            comm.Sendrecv(buf, peer, out, peer)
            assert (buf.array == ctx.rank + 1.0).all()
            survivors[ctx.rank] = out.array[0]
        elif ctx.rank == 2:
            comm.Send(ctx.device.zeros(RNDV), 3)
        else:
            comm.Recv(ctx.device.zeros(RNDV), source=2)

    engine = Engine(thetagpu1, nranks=4, progress_timeout_s=1.5)
    with_faults(engine, FaultPlan().drop(2, 3, nth=0))
    prev = fastpath.set_zero_copy_enabled(True)
    try:
        with pytest.raises(RankFailedError):
            engine.run(body)
    finally:
        fastpath.set_zero_copy_enabled(prev)
    assert survivors == {0: 2.0, 1: 1.0}


def test_in_place_allgather_skips_own_segment_copy():
    """The in-place allgather's own segment is already in the receive
    buffer: zero-copy must leave it untouched and still produce the
    exact gathered message."""
    def body(mpx):
        comm = mpx.COMM_WORLD
        ctx = comm.ctx
        p, r = comm.size, comm.rank
        n = 64
        out = ctx.device.zeros(n * p, dtype=np.float32)
        out.array[r * n:(r + 1) * n] = r + 1
        comm.Allgather(IN_PLACE, out, count=n)
        return out.array.copy()

    prev = fastpath.set_zero_copy_enabled(True)
    try:
        got = runtime.run(body, system="thetagpu", nodes=1,
                          ranks_per_node=4, mode="pure_xccl")
    finally:
        fastpath.set_zero_copy_enabled(prev)
    expect = np.repeat(np.arange(1, 5, dtype=np.float32), 64)
    for rank, arr in enumerate(got):
        assert (arr == expect).all(), f"rank {rank} gathered wrong bytes"


def test_zero_copy_toggle_restores():
    prev = fastpath.set_zero_copy_enabled(False)
    try:
        assert not fastpath.zero_copy_enabled()
        fastpath.set_zero_copy_enabled(True)
        assert fastpath.zero_copy_enabled()
    finally:
        fastpath.set_zero_copy_enabled(prev)
