"""Persistent requests (MPI_Send_init / MPI_Recv_init / Start)."""


from repro.errors import MPICommError
from repro.mpi import Communicator
from repro.mpi.communicator import start_all


class TestPersistent:
    def test_repeated_halo_exchange(self, thetagpu1, spmd):
        """The canonical use: set up once, Start each iteration."""

        def body(ctx):
            comm = Communicator.world(ctx)
            peer = 1 - ctx.rank
            send = ctx.device.zeros(8)
            recv = ctx.device.zeros(8)
            sreq = comm.Send_init(send, peer, tag=3)
            rreq = comm.Recv_init(recv, source=peer, tag=3)
            got = []
            for it in range(3):
                send.fill(float(ctx.rank * 10 + it))
                start_all([rreq, sreq])
                sreq.wait()
                rreq.wait()
                got.append(float(recv.array[0]))
            return got

        out = spmd(thetagpu1, body, nranks=2)
        assert out[0] == [10.0, 11.0, 12.0]
        assert out[1] == [0.0, 1.0, 2.0]

    def test_start_twice_without_wait(self, thetagpu1, spmd):
        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                req = comm.Send_init(ctx.device.zeros(1 << 20), 1)
                req.Start()
                try:
                    req.Start()
                except MPICommError:
                    return "rejected"
                finally:
                    req.wait()
                    comm.Recv(ctx.device.zeros(1), source=1)
            else:
                comm.Recv(ctx.device.zeros(1 << 20), source=0)
                comm.Send(ctx.device.zeros(1), 0)
            return "rejected" if ctx.rank == 0 else None

        assert spmd(thetagpu1, body, nranks=2)[0] == "rejected"

    def test_wait_before_start(self, thetagpu1, spmd):
        def body(ctx):
            comm = Communicator.world(ctx)
            req = comm.Recv_init(ctx.device.zeros(4), source=0)
            try:
                req.wait()
            except MPICommError:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=1)[0] == "rejected"

    def test_invalid_dest_caught_at_init(self, thetagpu1, spmd):
        from repro.errors import MPIRankError

        def body(ctx):
            comm = Communicator.world(ctx)
            try:
                comm.Send_init(ctx.device.zeros(4), 5)
            except MPIRankError:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=2)[0] == "rejected"

    def test_active_flag(self, thetagpu1, spmd):
        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                comm.Send(ctx.device.zeros(4), 1, tag=9)
                return None
            req = comm.Recv_init(ctx.device.zeros(4), source=0, tag=9)
            before = req.active
            req.Start()
            req.wait()
            after = req.active
            return (before, after)

        assert spmd(thetagpu1, body, nranks=2)[1] == (False, False)
