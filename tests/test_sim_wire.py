"""Wire occupancy: serialization and arrival computation."""

import pytest

from repro.sim.wire import WireTracker, reverse_key


class TestReverseKey:
    def test_fwd_rev(self):
        assert reverse_key(("intra", 0, 0, 1, "fwd")) == ("intra", 0, 0, 1, "rev")

    def test_out_in(self):
        assert reverse_key(("nic", 2, "out")) == ("nic", 2, "in")

    def test_unknown_direction_unchanged(self):
        key = ("x", "weird")
        assert reverse_key(key) == key


class TestWireTracker:
    def test_single_transfer(self):
        w = WireTracker()
        arrival = w.book([("l", "fwd")], depart_us=0.0, nbytes=1000,
                         beta_bpus=100.0, alpha_us=2.0)
        assert arrival == 12.0  # 10 wire + 2 alpha

    def test_back_to_back_serialize(self):
        w = WireTracker()
        w.book([("l", "fwd")], 0.0, 1000, 100.0, 2.0)
        second = w.book([("l", "fwd")], 0.0, 1000, 100.0, 2.0)
        assert second == 22.0  # starts at 10, +10 wire +2 alpha

    def test_disjoint_wires_parallel(self):
        w = WireTracker()
        a = w.book([("a", "fwd")], 0.0, 1000, 100.0, 0.0)
        b = w.book([("b", "fwd")], 0.0, 1000, 100.0, 0.0)
        assert a == b == 10.0

    def test_later_departure_no_wait(self):
        w = WireTracker()
        w.book([("l", "fwd")], 0.0, 1000, 100.0, 0.0)       # busy to 10
        arrival = w.book([("l", "fwd")], 50.0, 1000, 100.0, 0.0)
        assert arrival == 60.0

    def test_multi_resource_bottleneck(self):
        w = WireTracker()
        w.book([("nic", 0, "out")], 0.0, 1000, 100.0, 0.0)   # busy to 10
        arrival = w.book([("nic", 0, "out"), ("nic", 1, "in")],
                         0.0, 1000, 100.0, 0.0)
        assert arrival == 20.0  # waits for the shared egress

    def test_empty_resources_local(self):
        w = WireTracker()
        assert w.book([], 5.0, 1000, 100.0, 1.0) == 16.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            WireTracker().book([("l", "fwd")], 0.0, -1, 1.0, 0.0)

    def test_free_at_and_reset(self):
        w = WireTracker()
        w.book([("l", "fwd")], 0.0, 1000, 100.0, 0.0)
        assert w.free_at(("l", "fwd")) == 10.0
        w.reset()
        assert w.free_at(("l", "fwd")) == 0.0

    def test_zero_beta_zero_wire(self):
        w = WireTracker()
        assert w.book([("l", "fwd")], 0.0, 100, 0.0, 3.0) == 3.0

    def test_throughput_emerges_from_occupancy(self):
        # a window of N messages cannot exceed wire bandwidth
        w = WireTracker()
        last = 0.0
        for _ in range(64):
            last = w.book([("l", "fwd")], 0.0, 1000, 100.0, 1.0)
        # 64 * 10us wire occupancy + final alpha
        assert last == pytest.approx(641.0)


def _book_each(bookings):
    """Reference: element-by-element ``book`` on a fresh tracker."""
    w = WireTracker()
    return [w.book(res, t, n, b, a) for res, t, n, b, a in bookings]


class TestBookMany:
    """``book_many`` must land bit-identically to sequential ``book``
    on every batch shape, including the vectorized fast cases."""

    def _check(self, bookings):
        expect = _book_each(bookings)
        w = WireTracker()
        got = w.book_many(bookings)
        assert got == expect  # exact float equality, not approx
        # occupancy state must match too: a follow-up booking sees the
        # same wire frees either way
        wref = WireTracker()
        for res, t, n, b, a in bookings:
            wref.book(res, t, n, b, a)
        for res, *_ in bookings:
            for r in res:
                assert w.free_at(r) == wref.free_at(r)
        return got

    def test_all_empty_resources_vectorized(self):
        # irrational beta: any reassociation of the float chain shows
        self._check([([], i * 0.3, 1000 + i, 97.0, 1.7) for i in range(50)])

    def test_disjoint_resources_vectorized(self):
        self._check([([(f"wire{i}", "fwd")], i * 0.1, 500 + 13 * i,
                      33.0, 0.9) for i in range(40)])

    def test_overlapping_resources_serial_fallback(self):
        got = self._check([([("shared", "fwd")], 0.0, 1000, 100.0, 1.0)
                           for _ in range(8)])
        assert got[-1] == 81.0  # 8 x 10us serialized + alpha

    def test_mixed_empty_and_wired(self):
        self._check([
            ([], 0.0, 4096, 128.0, 0.5),
            ([("a", "fwd")], 1.0, 1000, 100.0, 2.0),
            ([], 3.0, 0, 0.0, 0.1),
            ([("b", "fwd"), ("nic", 0, "out")], 0.0, 2000, 50.0, 1.0),
        ])

    def test_mixed_empty_and_contended(self):
        self._check([
            ([], 0.0, 100, 10.0, 0.5),
            ([("x", "fwd")], 0.0, 1000, 100.0, 1.0),
            ([("x", "fwd")], 0.0, 1000, 100.0, 1.0),  # contends: serial
        ])

    def test_zero_beta_batch(self):
        self._check([([], 1.0, 100, 0.0, 3.0),
                     ([("l", "fwd")], 0.0, 100, 0.0, 2.0),
                     ([("m", "fwd")], 0.5, 50, 25.0, 0.0)])

    def test_prior_occupancy_respected(self):
        # the batch must see wire state left by earlier bookings
        w = WireTracker()
        w.book([("l", "fwd")], 0.0, 1000, 100.0, 0.0)  # busy to 10
        got = w.book_many([([("l", "fwd")], 0.0, 1000, 100.0, 2.0),
                           ([("m", "fwd")], 0.0, 1000, 100.0, 2.0)])
        assert got == [22.0, 12.0]

    def test_negative_size_rejected_upfront(self):
        # validation happens before any booking applies: the good
        # first entry must not have charged the wire
        w = WireTracker()
        with pytest.raises(ValueError):
            w.book_many([([("l", "fwd")], 0.0, 1000, 100.0, 0.0),
                         ([("m", "fwd")], 0.0, -5, 100.0, 0.0)])
        assert w.free_at(("l", "fwd")) == 0.0

    def test_empty_batch(self):
        assert WireTracker().book_many([]) == []
