"""MSCCL-IR interpreted schedules vs built-in collectives."""

import numpy as np
import pytest

from repro.errors import CCLInvalidUsage
from repro.mpi import FLOAT, MAX, SUM
from repro.xccl import api as xapi
from repro.xccl.msccl_ir import (
    Schedule,
    Step,
    allpairs_allreduce,
    execute,
    ring_allreduce,
)


def make_comm(ctx, backend="msccl"):
    uid = xapi.xcclGetUniqueId(ctx, ctx.size, "ir")
    return xapi.xcclCommInitRank(ctx, list(range(ctx.size)), ctx.rank, uid,
                                 backend)


class TestValidation:
    def test_allpairs_validates(self):
        allpairs_allreduce(4).validate()

    def test_ring_validates(self):
        ring_allreduce(5).validate()

    def test_unmatched_send_rejected(self):
        s = Schedule("bad", "allreduce", 2, 2)
        s.steps[0] = [Step("send", peer=1, src_chunk=0, phase=0)]
        s.steps[1] = []  # nobody receives
        with pytest.raises(CCLInvalidUsage):
            s.validate()

    def test_bad_peer_rejected(self):
        s = Schedule("bad", "allreduce", 2, 1)
        s.steps[0] = [Step("send", peer=5, src_chunk=0, phase=0)]
        with pytest.raises(CCLInvalidUsage):
            s.validate()

    def test_bad_chunk_rejected(self):
        s = Schedule("bad", "allreduce", 2, 1)
        s.steps[0] = [Step("copy", src_chunk=0, dst_chunk=3)]
        with pytest.raises(CCLInvalidUsage):
            s.validate()

    def test_bad_kind_rejected(self):
        s = Schedule("bad", "allreduce", 2, 1)
        s.steps[0] = [Step("teleport", peer=1)]
        with pytest.raises(CCLInvalidUsage):
            s.validate()


class TestExecution:
    @pytest.mark.parametrize("generator", [allpairs_allreduce, ring_allreduce])
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_allreduce_schedules_correct(self, thetagpu1, spmd, generator, p):
        sched = generator(p)
        n = p * 32

        def body(ctx):
            comm = make_comm(ctx)
            buf = ctx.device.zeros(n)
            buf.array[:] = np.arange(n) + ctx.rank * 1000.0
            execute(sched, comm, buf, n, FLOAT, SUM)
            expect = sum(np.arange(n) + r * 1000.0 for r in range(p))
            return np.allclose(buf.array, expect.astype(np.float32))

        assert all(spmd(thetagpu1, body, nranks=p))

    def test_max_op(self, thetagpu1, spmd):
        p = 4
        sched = allpairs_allreduce(p)

        def body(ctx):
            comm = make_comm(ctx)
            buf = ctx.device.zeros(p * 8)
            buf.fill(float(ctx.rank))
            execute(sched, comm, buf, p * 8, FLOAT, MAX)
            return bool(np.all(buf.array == p - 1))

        assert all(spmd(thetagpu1, body, nranks=p))

    def test_rank_count_mismatch(self, thetagpu1, spmd):
        sched = allpairs_allreduce(4)

        def body(ctx):
            comm = make_comm(ctx)
            try:
                execute(sched, comm, ctx.device.zeros(8), 8, FLOAT)
            except CCLInvalidUsage:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=2) == ["rejected"] * 2

    def test_indivisible_count(self, thetagpu1, spmd):
        sched = allpairs_allreduce(2)

        def body(ctx):
            comm = make_comm(ctx)
            try:
                execute(sched, comm, ctx.device.zeros(7), 7, FLOAT)
            except CCLInvalidUsage:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=2) == ["rejected"] * 2

    def test_allpairs_fewer_phases_than_ring(self, thetagpu1, spmd):
        """The point of custom schedules: allpairs finishes its small
        allreduce in fewer launch rounds than the ring."""
        p = 8
        ap, ring = allpairs_allreduce(p), ring_allreduce(p)
        assert len(ap.phases(0)) < len(ring.phases(0))

        def body(ctx):
            comm = make_comm(ctx)
            buf = ctx.device.zeros(p * 16)
            t0 = ctx.now
            execute(ap, comm, buf, p * 16, FLOAT, SUM)
            t_ap = ctx.now - t0
            t1 = ctx.now
            execute(ring, comm, buf, p * 16, FLOAT, SUM)
            t_ring = ctx.now - t1
            return t_ap < t_ring

        assert all(spmd(thetagpu1, body, nranks=p))

    def test_runs_on_nccl_backend_too(self, thetagpu1, spmd):
        """Schedules are backend-agnostic — they compile to the unified
        group API, so NCCL executes them as readily as MSCCL."""
        p = 4
        sched = allpairs_allreduce(p)

        def body(ctx):
            comm = make_comm(ctx, backend="nccl")
            buf = ctx.device.zeros(p * 4)
            buf.fill(1.0)
            execute(sched, comm, buf, p * 4, FLOAT, SUM)
            return float(buf.array[0])

        assert spmd(thetagpu1, body, nranks=p) == [float(p)] * p
