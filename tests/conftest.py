"""Shared fixtures: small clusters and an SPMD runner helper."""

from __future__ import annotations

import pytest

from repro.hw.systems import make_system
from repro.sim.engine import Engine


@pytest.fixture
def thetagpu1():
    """One ThetaGPU node (8 simulated A100s)."""
    return make_system("thetagpu", 1)


@pytest.fixture
def thetagpu2():
    """Two ThetaGPU nodes."""
    return make_system("thetagpu", 2)


@pytest.fixture
def mri2():
    """Two MRI nodes (2 MI100s each)."""
    return make_system("mri", 2)


@pytest.fixture
def voyager1():
    """One Voyager node (8 Gaudis)."""
    return make_system("voyager", 1)


@pytest.fixture
def spmd():
    """Run an SPMD body: ``spmd(cluster, fn, nranks=..., ...) -> [ret]``."""

    def runner(cluster, fn, nranks=None, ranks_per_node=None, trace=False):
        engine = Engine(cluster, nranks=nranks, ranks_per_node=ranks_per_node,
                        trace=trace, progress_timeout_s=20.0)
        return engine.run(fn)

    return runner
