"""ULFM-style elastic fault recovery (``MPIX_ELASTIC``).

A killed rank revokes the communicators it belonged to; survivors see
:class:`~repro.errors.CommRevokedError`, agree on the failure set
(``Comm_agree``), rebuild a dense-ranked communicator (``Comm_shrink``)
and finish a FIXED post-recovery schedule on it.  The fixed schedule is
the application contract: survivors abort the failed collective at
*different* loop indices, so "resume where I left off" would deadlock —
agreement exists precisely to name the common restart point.
"""

import numpy as np
import pytest

from repro import fastpath
from repro.errors import CommRevokedError, RankFailedError
from repro.hw.systems import make_system
from repro.mpi import SUM, Communicator
from repro.sim.engine import Engine
from repro.sim.faults import FaultPlan, with_faults

POST = 3  # fixed post-recovery schedule length


def _recovery_body(ctx, pre_iters=6, count=256):
    """Allreduce loop that recovers via agree -> shrink -> fixed schedule.

    Returns ``None`` on the killed rank, and
    ``(payload, new_size, failed_set)`` on every survivor, where
    ``payload`` is the full post-recovery result vector.
    """
    comm = Communicator.world(ctx)
    buf = ctx.device.zeros(count)
    out = ctx.device.zeros(count)
    done = 0
    try:
        for _ in range(pre_iters + 1):
            buf.array[:] = float(ctx.rank + done)
            comm.Allreduce(buf, out, op=SUM)
            done += 1
    except CommRevokedError:
        _flag, failed = comm.Comm_agree()
        newcomm = comm.Comm_shrink()
        nbuf = ctx.device.zeros(count)
        nout = ctx.device.zeros(count)
        for i in range(POST):
            nbuf.array[:] = float(newcomm.Get_rank() + i)
            newcomm.Allreduce(nbuf, nout, op=SUM)
        return (nout.array.copy(), newcomm.Get_size(),
                tuple(sorted(failed)))
    return None


def _expect_sum(survivor_count):
    # final iteration: every survivor contributes (dense_rank + POST-1)
    return sum(range(survivor_count)) + (POST - 1) * survivor_count


class TestElasticRecovery:
    @pytest.mark.parametrize("coop", [False, True],
                             ids=["thread-sched", "coop-sched"])
    @pytest.mark.parametrize("pre_iters,kill_at",
                             [(6, 60.0), (0, 0.0)],
                             ids=["mid-collective", "clean-death"])
    def test_kill_revoke_shrink_recovers(self, thetagpu1, coop,
                                         pre_iters, kill_at):
        prev = fastpath.configure(elastic=True, coop_sched=coop)
        try:
            engine = Engine(thetagpu1, nranks=8, progress_timeout_s=2.0)
            injector = with_faults(engine,
                                   FaultPlan().kill(3, after_us=kill_at))
            results = engine.run(_recovery_body, pre_iters=pre_iters)
        finally:
            fastpath.configure(**prev)
        assert injector.killed == [3]
        assert results[3] is None
        expect = _expect_sum(7)
        for rank, r in enumerate(results):
            if rank == 3:
                continue
            payload, new_size, failed = r
            assert new_size == 7
            assert failed == (3,)
            assert np.all(payload == expect)
        # Engine construction zeroes the process-global counters, so
        # these are this run's counts: one comm revoked, one shrink
        assert fastpath.STATS.comm_revokes == 1
        assert fastpath.STATS.comm_shrinks == 1

    def test_64_rank_recovery_bit_identical_to_dense_run(self):
        """The ISSUE acceptance scenario: 64 ranks under the coop
        scheduler, one killed mid-allreduce; after revoke -> agree ->
        shrink the 63 survivors' payloads are bit-identical to a fresh
        63-rank run of the same fixed schedule."""
        system = make_system("thetagpu", 8)
        prev = fastpath.configure(elastic=True, coop_sched=True)
        try:
            engine = Engine(system, nranks=64, progress_timeout_s=3.0)
            with_faults(engine, FaultPlan().kill(17, after_us=60.0))
            results = engine.run(_recovery_body, pre_iters=4)
        finally:
            fastpath.configure(**prev)
        survivors = [r for i, r in enumerate(results) if i != 17]
        assert results[17] is None
        assert all(r is not None and r[1] == 63 and r[2] == (17,)
                   for r in survivors)

        # fresh dense 63-rank run of the identical fixed schedule
        def dense_body(ctx):
            comm = Communicator.world(ctx)
            buf = ctx.device.zeros(256)
            out = ctx.device.zeros(256)
            for i in range(POST):
                buf.array[:] = float(comm.Get_rank() + i)
                comm.Allreduce(buf, out, op=SUM)
            return out.array.copy()

        prev = fastpath.configure(coop_sched=True)
        try:
            dense = Engine(make_system("thetagpu", 8), nranks=63,
                           progress_timeout_s=3.0).run(dense_body)
        finally:
            fastpath.configure(**prev)
        for r, ref in zip(survivors, dense):
            assert r[0].tobytes() == ref.tobytes()

    def test_gate_off_kill_keeps_historical_semantics(self, thetagpu1):
        """Without MPIX_ELASTIC a killed rank still fails the run —
        the gate must not change failure semantics when off."""
        engine = Engine(thetagpu1, nranks=4, progress_timeout_s=2.0)
        with_faults(engine, FaultPlan().kill(1, after_us=0.0))
        with pytest.raises(RankFailedError):
            engine.run(_recovery_body, pre_iters=2)

    def test_recovered_comm_survives_more_collectives(self, thetagpu1):
        """The shrunk communicator is a first-class comm: bcast and a
        second allreduce on it work too."""
        prev = fastpath.configure(elastic=True)

        def body(ctx):
            comm = Communicator.world(ctx)
            buf = ctx.device.zeros(64)
            out = ctx.device.zeros(64)
            try:
                for i in range(4):
                    buf.array[:] = 1.0
                    comm.Allreduce(buf, out, op=SUM)
            except CommRevokedError:
                comm.Comm_agree()
                new = comm.Comm_shrink()
                b = ctx.device.zeros(64)
                if new.Get_rank() == 0:
                    b.array[:] = 7.0
                new.Bcast(b, root=0)
                o = ctx.device.zeros(64)
                new.Allreduce(b, o, op=SUM)
                return (float(b.array[0]), float(o.array[0]))
            return None

        try:
            engine = Engine(thetagpu1, nranks=6, progress_timeout_s=2.0)
            with_faults(engine, FaultPlan().kill(2, after_us=30.0))
            results = engine.run(body)
        finally:
            fastpath.configure(**prev)
        assert results[2] is None
        assert all(r == (7.0, 35.0) for i, r in enumerate(results)
                   if i != 2)


class TestRevokeSemantics:
    def test_ops_on_revoked_comm_raise(self, thetagpu1):
        prev = fastpath.configure(elastic=True)

        def body(ctx):
            comm = Communicator.world(ctx)
            if ctx.rank == 0:
                comm.Comm_revoke()
            # revoke is engine-wide and immediate: every rank's next
            # operation (no barrier in between) must raise
            assert comm.Comm_is_revoked()
            with pytest.raises(CommRevokedError):
                comm.Allreduce(ctx.device.zeros(8), ctx.device.zeros(8),
                               op=SUM)
            with pytest.raises(CommRevokedError):
                comm.Send(ctx.device.zeros(8), (ctx.rank + 1) % 4)
            return "revoked"

        try:
            engine = Engine(thetagpu1, nranks=4, progress_timeout_s=2.0)
            results = engine.run(body)
        finally:
            fastpath.configure(**prev)
        assert results == ["revoked"] * 4

    def test_revoke_is_idempotent(self, thetagpu1):
        prev = fastpath.configure(elastic=True)

        def body(ctx):
            comm = Communicator.world(ctx)
            comm.Comm_revoke()   # every rank revokes; counted once
            comm.Comm_revoke()
            return comm.Comm_is_revoked()

        try:
            engine = Engine(thetagpu1, nranks=4, progress_timeout_s=2.0)
            results = engine.run(body)
        finally:
            fastpath.configure(**prev)
        assert results == [True] * 4
        # 4 ranks x 2 calls each, deduplicated to one revocation
        assert fastpath.STATS.comm_revokes == 1

    def test_shrink_without_failure_is_identity_shaped(self, thetagpu1):
        """Revoke with no deaths: shrink keeps all ranks but yields a
        fresh, working communicator."""
        prev = fastpath.configure(elastic=True)

        def body(ctx):
            comm = Communicator.world(ctx)
            comm.Comm_revoke()
            _flag, failed = comm.Comm_agree()
            new = comm.Comm_shrink()
            buf = ctx.device.zeros(16)
            buf.array[:] = 1.0
            out = ctx.device.zeros(16)
            new.Allreduce(buf, out, op=SUM)
            return (failed, new.Get_size(), float(out.array[0]))

        try:
            engine = Engine(thetagpu1, nranks=4, progress_timeout_s=2.0)
            results = engine.run(body)
        finally:
            fastpath.configure(**prev)
        assert results == [((), 4, 4.0)] * 4

    def test_agree_ands_flags(self, thetagpu1):
        prev = fastpath.configure(elastic=True)

        def body(ctx):
            comm = Communicator.world(ctx)
            flag, failed = comm.Comm_agree(flag=0 if ctx.rank == 1 else 1)
            return (flag, failed)

        try:
            engine = Engine(thetagpu1, nranks=4, progress_timeout_s=2.0)
            results = engine.run(body)
        finally:
            fastpath.configure(**prev)
        assert results == [(0, ())] * 4
