"""ASCII chart rendering."""

import pytest

from repro.util.asciiplot import ascii_plot, plot_result_set
from repro.util.records import ResultRecord, ResultSet


def _series():
    return {
        "MPI": [(4, 10.0), (1024, 12.0), (1 << 20, 400.0)],
        "NCCL": [(4, 30.0), (1024, 31.0), (1 << 20, 60.0)],
    }


class TestAsciiPlot:
    def test_renders_with_glyphs(self):
        text = ascii_plot(_series())
        assert "o" in text and "x" in text
        assert "o MPI" in text and "x NCCL" in text

    def test_title_and_ylabel(self):
        text = ascii_plot(_series(), title="crossover", ylabel="us")
        assert text.splitlines()[0] == "crossover"
        assert "[us]" in text

    def test_dimensions(self):
        text = ascii_plot(_series(), width=40, height=10)
        plot_rows = [l for l in text.splitlines() if "│" in l or "┤" in l]
        assert len(plot_rows) == 10

    def test_x_axis_labels_sizes(self):
        text = ascii_plot(_series())
        assert "4" in text and "1M" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_linear_axes(self):
        text = ascii_plot({"a": [(0.0, 1.0), (10.0, 5.0)]},
                          logx=False, logy=False)
        assert "│" in text

    def test_single_point_no_crash(self):
        assert "o" in ascii_plot({"a": [(10, 10)]})

    def test_overlap_marker(self):
        text = ascii_plot({"a": [(10, 10)], "b": [(10, 10)]})
        assert "?" in text


class TestPlotResultSet:
    def test_from_records(self):
        rs = ResultSet([
            ResultRecord("e", "MPI", 4.0, 10.0, "us"),
            ResultRecord("e", "MPI", 4096.0, 50.0, "us"),
            ResultRecord("e", "NCCL", 4.0, 30.0, "us"),
            ResultRecord("e", "NCCL", 4096.0, 35.0, "us"),
        ])
        text = plot_result_set(rs, title="t")
        assert "MPI" in text and "NCCL" in text and "[us]" in text
