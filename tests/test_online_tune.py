"""Online autotuning overlay (``MPIX_ONLINE_TUNE``).

The dispatch pipeline feeds measured per-(collective, size-bucket)
latencies back into the engine's :class:`OnlineTuner`; after the
observe/explore warm-up the route stage follows the measured winner
instead of the static §3.4 table.  The load-bearing properties tested
here: routes never deviate during the observe phase (short runs stay
bit-identical with the gate on or off), a deliberately wrong static
table is corrected after warm-up, overlays die with their communicator
(``Comm_free`` / ``Comm_shrink``), and a collective missing from the
table degrades to MPI like a capability miss.
"""

from repro import fastpath
from repro.core.fallback import FallbackReason
from repro.core.runtime import world_communicator
from repro.core.tuning_table import TuningTable, cached_table, _cache
from repro.core.online_tune import OnlineTuner, bucket_span, size_bucket
from repro.errors import CommRevokedError
from repro.mpi import SUM
from repro.sim.engine import Engine
from repro.sim.faults import FaultPlan, with_faults

#: a table that is WRONG for large device-resident allreduces on
#: thetagpu: it pins every size to the MPI algorithms, where NCCL's
#: ring is measurably faster in the simulator's virtual time
_ALL_MPI = TuningTable(
    backend="nccl", shape_key=("test", "all-mpi"),
    entries={coll: [(-1, "mpi")]
             for coll in ("allreduce", "bcast", "reduce", "allgather",
                          "alltoall", "reduce_scatter", "gather",
                          "scatter")})

_COUNT = 1 << 16   # 256 KiB of float32: squarely CCL territory


def _allreduce_body(ctx, iters, table):
    comm = world_communicator(ctx, table=table)
    buf = ctx.device.zeros(_COUNT)
    out = ctx.device.zeros(_COUNT)
    for i in range(iters):
        buf.array[:] = float(ctx.rank + i)
        comm.Allreduce(buf, out, op=SUM)
    stats = comm.coll.stats
    return (float(out.array[0]), stats.xccl_calls, stats.mpi_calls,
            comm.ctx_id)


class TestConvergence:
    def test_wrong_static_table_corrected_after_warmup(self, thetagpu1):
        """The feedback loop: static says MPI everywhere, measurement
        says CCL; after observe+explore the bucket fits to xccl and
        the counters record the flip."""
        prev = fastpath.configure(online_tune=True)
        try:
            engine = Engine(thetagpu1, nranks=8, progress_timeout_s=5.0)
            results = engine.run(_allreduce_body, iters=12, table=_ALL_MPI)
        finally:
            fastpath.configure(**prev)
        expect = sum(range(8)) + 11 * 8
        assert all(r[0] == expect for r in results)
        # every rank explored xccl and then stayed on it post-fit
        assert all(r[1] > 0 for r in results)
        overlay = engine.online_tuner.overlay()
        key = (results[0][3], "allreduce", size_bucket(_COUNT * 4))
        assert overlay[key]["static"] == "mpi"
        assert overlay[key]["fitted"] == "xccl"
        assert fastpath.STATS.online_updates >= 1
        assert fastpath.STATS.route_flips >= 1

    def test_observe_phase_follows_static_route_exactly(self, thetagpu1):
        """Below the warm-up threshold the gate is provably inert: all
        calls take the static route and no bucket has fitted."""
        prev = fastpath.configure(online_tune=True)
        try:
            engine = Engine(thetagpu1, nranks=4, progress_timeout_s=5.0)
            # observe_calls defaults to 4: stop exactly at the boundary
            results = engine.run(_allreduce_body, iters=4, table=_ALL_MPI)
        finally:
            fastpath.configure(**prev)
        assert all(r[1] == 0 and r[2] == 4 for r in results)
        overlay = engine.online_tuner.overlay()
        assert all(state["fitted"] is None for state in overlay.values())
        assert fastpath.STATS.online_updates == 0

    def test_gate_off_is_inert(self, thetagpu1):
        """With MPIX_ONLINE_TUNE off the overlay never even observes."""
        prev = fastpath.configure(online_tune=False)
        try:
            engine = Engine(thetagpu1, nranks=4, progress_timeout_s=5.0)
            results = engine.run(_allreduce_body, iters=12, table=_ALL_MPI)
        finally:
            fastpath.configure(**prev)
        assert all(r[1] == 0 and r[2] == 12 for r in results)
        assert engine.online_tuner.overlay() == {}


class TestUnitPhases:
    """The tuner state machine, unit-level (no engine)."""

    def test_phase_schedule_is_pure_function_of_call_index(self):
        tuner = OnlineTuner(observe_calls=2, explore_calls=1)
        seq = [tuner.advise("c", "allreduce", 10, i, "mpi",
                            ["mpi", "xccl"])[1] for i in range(3)]
        assert seq == ["observe", "observe", "explore"]

    def test_fit_picks_measured_winner(self):
        tuner = OnlineTuner(observe_calls=1, explore_calls=1)
        tuner.advise("c", "allreduce", 10, 0, "mpi", ["mpi", "xccl"])
        tuner.observe("c", "allreduce", 10, "mpi", 100.0)
        tuner.advise("c", "allreduce", 10, 1, "mpi", ["mpi", "xccl"])
        tuner.observe("c", "allreduce", 10, "xccl", 10.0)
        route, phase = tuner.advise("c", "allreduce", 10, 2, "mpi",
                                    ["mpi", "xccl"])
        assert (route, phase) == ("xccl", "fitted")

    def test_static_wins_ties(self):
        tuner = OnlineTuner(observe_calls=1, explore_calls=1)
        tuner.advise("c", "bcast", 5, 0, "mpi", ["mpi", "xccl"])
        tuner.observe("c", "bcast", 5, "mpi", 50.0)
        tuner.advise("c", "bcast", 5, 1, "mpi", ["mpi", "xccl"])
        tuner.observe("c", "bcast", 5, "xccl", 50.0)
        route, _ = tuner.advise("c", "bcast", 5, 2, "mpi", ["mpi", "xccl"])
        assert route == "mpi"

    def test_release_drops_only_that_comm(self):
        tuner = OnlineTuner()
        tuner.advise("a", "allreduce", 3, 0, "mpi", ["mpi", "xccl"])
        tuner.advise("b", "allreduce", 3, 0, "mpi", ["mpi", "xccl"])
        tuner.release("a")
        assert set(k[0] for k in tuner.overlay()) == {"b"}

    def test_bucket_span_inverts_size_bucket(self):
        for nbytes in (1, 2, 3, 8, 1024, 4097, 1 << 20):
            lo, hi = bucket_span(size_bucket(nbytes))
            assert lo <= nbytes <= hi


class TestLifecycle:
    def test_comm_free_drops_overlay(self, thetagpu1):
        prev = fastpath.configure(online_tune=True)

        def body(ctx):
            comm = world_communicator(ctx, table=_ALL_MPI)
            buf = ctx.device.zeros(_COUNT)
            out = ctx.device.zeros(_COUNT)
            for _ in range(3):
                comm.Allreduce(buf, out, op=SUM)
            tuner = ctx.engine.online_tuner
            before = len(tuner.overlay(comm.ctx_id))
            # the tuner is engine-shared: order every rank's "before"
            # read ahead of the first Free with one more collective
            comm.Allreduce(buf, out, op=SUM)
            comm.Free()
            return (before, len(tuner.overlay(comm.ctx_id)))

        try:
            engine = Engine(thetagpu1, nranks=4, progress_timeout_s=5.0)
            results = engine.run(body)
        finally:
            fastpath.configure(**prev)
        assert all(before > 0 and after == 0 for before, after in results)

    def test_shrink_drops_overlay_and_retunes_survivors(self, thetagpu1):
        """Comm_shrink tears the old comm's overlay down; the shrunk
        comm re-tunes from scratch for the survivor shape."""
        prev = fastpath.configure(online_tune=True, elastic=True)

        def body(ctx):
            comm = world_communicator(ctx, table=_ALL_MPI)
            buf = ctx.device.zeros(_COUNT)
            out = ctx.device.zeros(_COUNT)
            try:
                for i in range(8):
                    buf.array[:] = float(ctx.rank + i)
                    comm.Allreduce(buf, out, op=SUM)
            except CommRevokedError:
                comm.Comm_agree()
                new = comm.Comm_shrink()
                tuner = ctx.engine.online_tuner
                old_overlay = len(tuner.overlay(comm.ctx_id))
                for i in range(12):
                    buf.array[:] = float(new.Get_rank() + i)
                    new.Allreduce(buf, out, op=SUM)
                fitted = [s["fitted"]
                          for s in tuner.overlay(new.ctx_id).values()]
                return (old_overlay, fitted)
            return None

        try:
            engine = Engine(thetagpu1, nranks=8, progress_timeout_s=5.0)
            with_faults(engine, FaultPlan().kill(2, after_us=200.0))
            results = engine.run(body)
        finally:
            fastpath.configure(**prev)
        assert results[2] is None
        for i, r in enumerate(results):
            if i == 2:
                continue
            old_overlay, fitted = r
            assert old_overlay == 0        # released by Comm_shrink
            assert fitted == ["xccl"]      # survivor shape re-fitted

    def test_new_engine_clears_memoized_tables(self, thetagpu1):
        """Back-to-back runs: Engine construction zeroes the process
        globals — the memoized tuning tables and the counters — so a
        second run can never be served the first run's state."""
        from repro.mpi.config import mvapich_gpu
        from repro.perfmodel import ccl_params
        from repro.perfmodel.shape import shape_of
        shape = shape_of(thetagpu1, range(8))
        cached_table(shape, ccl_params("nccl"), mvapich_gpu())
        assert len(_cache) > 0
        Engine(thetagpu1, nranks=2, progress_timeout_s=1.0)
        assert len(_cache) == 0
        assert fastpath.STATS.dispatch_calls == 0


class TestTuningMiss:
    def test_missing_collective_degrades_to_mpi(self, thetagpu1):
        """A collective absent from the table falls back to the MPI
        algorithms (counted as a route fallback) instead of erroring."""
        sparse = TuningTable(backend="nccl", shape_key=("test", "sparse"),
                             entries={"allreduce": [(-1, "xccl")]})

        def body(ctx):
            comm = world_communicator(ctx, table=sparse)
            buf = ctx.device.zeros(64)
            if ctx.rank == 0:
                buf.array[:] = 9.0
            comm.Bcast(buf, root=0)
            return (float(buf.array[0]), dict(comm.coll.stats.fallbacks))

        engine = Engine(thetagpu1, nranks=4, progress_timeout_s=5.0)
        results = engine.run(body)
        for value, fallbacks in results:
            assert value == 9.0
            assert fallbacks.get(("bcast", FallbackReason.TUNING_MISS)) == 1
        assert fastpath.STATS.route_fallbacks >= 1

    def test_missing_collective_marks_trace(self, thetagpu1):
        sparse = TuningTable(backend="nccl", shape_key=("test", "sparse"),
                             entries={"allreduce": [(-1, "xccl")]})

        def body(ctx):
            comm = world_communicator(ctx, table=sparse)
            buf = ctx.device.zeros(64)
            comm.Bcast(buf, root=0)

        engine = Engine(thetagpu1, nranks=2, trace=True,
                        progress_timeout_s=5.0)
        engine.run(body)
        labels = [ev.label for tr in engine.traces() for ev in tr.events
                  if ev.kind == "stage"]
        assert "tuning:missing:bcast" in labels
