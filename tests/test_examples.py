"""The shipped examples run end to end (smoke + output checks)."""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {"quickstart.py", "heffte_fft.py", "dl_training.py",
                "portability_sweep.py", "custom_algorithm.py"} <= names

    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "thetagpu" in out and "voyager" in out
        assert "backend=nccl" in out and "backend=hccl" in out

    def test_heffte_fft(self, capsys):
        _load("heffte_fft").main()
        out = capsys.readouterr().out
        assert "datatype-fallbacks" in out
        assert "validated" in out

    def test_portability_sweep(self, capsys):
        _load("portability_sweep").main()
        out = capsys.readouterr().out
        assert out.count("residual=0.024027") == 3  # same answer everywhere
        assert "crossovers" in out

    def test_custom_algorithm(self, capsys):
        _load("custom_algorithm").main()
        out = capsys.readouterr().out
        assert "star_allreduce" in out
        assert "identical results" in out

    @pytest.mark.slow
    def test_dl_training(self, capsys):
        _load("dl_training").main()
        out = capsys.readouterr().out
        assert "ResNet-50" in out
        assert "Proposed Hybrid xCCL" in out
        assert "VGG-16" in out
