"""SPMD engine: launching, rendezvous slots, failure handling."""

import pytest

from repro.errors import DeadlockError, RankFailedError, SimulationError
from repro.sim.engine import Engine, run_spmd
from repro.sim.mailbox import Message


class TestLaunch:
    def test_returns_rank_order(self, thetagpu1):
        out = run_spmd(thetagpu1, lambda ctx: ctx.rank * 10, nranks=4)
        assert out == [0, 10, 20, 30]

    def test_default_nranks_fills_devices(self, thetagpu1):
        assert len(run_spmd(thetagpu1, lambda ctx: ctx.size)) == 8

    def test_ranks_per_node_placement(self, thetagpu2, spmd):
        nodes = spmd(thetagpu2,
                     lambda ctx: ctx.cluster.node_index_of(ctx.device),
                     nranks=2, ranks_per_node=1)
        assert nodes == [0, 1]

    def test_block_placement(self, thetagpu2, spmd):
        nodes = spmd(thetagpu2,
                     lambda ctx: ctx.cluster.node_index_of(ctx.device),
                     nranks=10)
        assert nodes == [0] * 8 + [1] * 2

    def test_too_many_ranks(self, thetagpu1):
        with pytest.raises(SimulationError):
            Engine(thetagpu1, nranks=9)

    def test_zero_ranks(self, thetagpu1):
        with pytest.raises(SimulationError):
            Engine(thetagpu1, nranks=0)

    def test_context_attributes(self, thetagpu1, spmd):
        def body(ctx):
            assert ctx.device_of(0) is ctx.engine.device_of(0)
            assert ctx.mailbox_of(ctx.rank) is ctx.mailbox
            return (ctx.rank, ctx.size, ctx.now)

        out = spmd(thetagpu1, body, nranks=3)
        assert out[2] == (2, 3, 0.0)


class TestFailures:
    def test_exception_collected(self, thetagpu1):
        def body(ctx):
            if ctx.rank == 1:
                raise ValueError("boom")
            return ctx.rank

        with pytest.raises(RankFailedError) as exc_info:
            run_spmd(thetagpu1, body, nranks=2)
        assert 1 in exc_info.value.failures
        assert isinstance(exc_info.value.failures[1], ValueError)

    def test_primary_error_preferred_over_deadlock(self, thetagpu1):
        # rank 1 dies; rank 0 blocks forever waiting on it -> its
        # DeadlockError is secondary noise
        def body(ctx):
            if ctx.rank == 1:
                raise ValueError("primary")
            ctx.mailbox.match(src=1, tag=0)

        with pytest.raises(RankFailedError) as exc_info:
            run_spmd(thetagpu1, body, nranks=2, progress_timeout_s=3.0)
        assert list(exc_info.value.failures) == [1]

    def test_all_blocked_is_deadlock(self, thetagpu1):
        def body(ctx):
            ctx.mailbox.match(src=(ctx.rank + 1) % 2, tag=0)

        with pytest.raises(RankFailedError) as exc_info:
            run_spmd(thetagpu1, body, nranks=2, progress_timeout_s=1.0)
        assert all(isinstance(e, DeadlockError)
                   for e in exc_info.value.failures.values())


class TestCollectiveSlot:
    def test_exchange_shares_result(self, thetagpu1, spmd):
        def body(ctx):
            slot = ctx.collective_slot("sum")
            return slot.exchange(ctx.rank, ctx.rank,
                                 lambda p: sum(p.values()))

        assert spmd(thetagpu1, body, nranks=4) == [6, 6, 6, 6]

    def test_compute_runs_once(self, thetagpu1, spmd):
        def body(ctx):
            slot = ctx.collective_slot("once")
            return slot.exchange(ctx.rank, None, lambda p: object())

        out = spmd(thetagpu1, body, nranks=4)
        assert all(o is out[0] for o in out)

    def test_repeated_key_isolated_by_use_count(self, thetagpu1, spmd):
        def body(ctx):
            a = ctx.collective_slot("k").exchange(ctx.rank, 1,
                                                  lambda p: sum(p.values()))
            b = ctx.collective_slot("k").exchange(ctx.rank, 2,
                                                  lambda p: sum(p.values()))
            return (a, b)

        assert spmd(thetagpu1, body, nranks=3) == [(3, 6)] * 3

    def test_slots_reaped_after_finish(self, thetagpu1):
        engine = Engine(thetagpu1, nranks=4)

        def body(ctx):
            ctx.collective_slot("x").exchange(ctx.rank, None, lambda p: 0)

        engine.run(body)
        assert not engine._slots  # no snapshot leak (the DL OOM bug)

    def test_skewed_repetitions_no_collision(self, thetagpu1, spmd):
        # rank 0 races ahead through many uses of the same key
        def body(ctx):
            total = 0
            for i in range(20):
                total += ctx.collective_slot("loop").exchange(
                    ctx.rank, i, lambda p: max(p.values()))
            return total

        out = spmd(thetagpu1, body, nranks=4)
        assert out == [sum(range(20))] * 4


class TestWiresOnEngine:
    def test_engine_owns_tracker(self, thetagpu1):
        engine = Engine(thetagpu1, nranks=2)
        assert engine.wires.free_at(("x",)) == 0.0

    def test_message_clock_merge(self, thetagpu1, spmd):
        def body(ctx):
            if ctx.rank == 0:
                ctx.mailbox_of(1).post(Message(0, 1, 0, b"", 0.0, 123.0, 0))
                return ctx.now
            m = ctx.mailbox.match(src=0)
            ctx.clock.merge(m.arrival_us)
            return ctx.now

        out = spmd(thetagpu1, body, nranks=2)
        assert out == [0.0, 123.0]
