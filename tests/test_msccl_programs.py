"""MSCCL custom-algorithm programs."""

import pytest

from repro.errors import ConfigError
from repro.xccl.msccl_programs import (
    DEFAULT_PROGRAMS,
    MSCCLProgram,
    ProgramRegistry,
    default_registry,
)


class TestProgram:
    def test_activation_window(self):
        pr = MSCCLProgram("p", "allreduce", 256, 1024, 1.4)
        assert pr.active(256, 8)
        assert pr.active(1024, 8)
        assert not pr.active(255, 8)
        assert not pr.active(1025, 8)

    def test_rank_cap(self):
        pr = MSCCLProgram("p", "allreduce", 1, 1024, 1.4, max_ranks=8)
        assert pr.active(512, 8)
        assert not pr.active(512, 9)

    def test_speedup_peaks_in_middle(self):
        pr = MSCCLProgram("p", "allreduce", 256, 256 * 1024, 1.35)
        mid = pr.speedup(8192)     # near log-center
        edge = pr.speedup(256)
        assert mid > edge > 1.0

    def test_speedup_outside_window(self):
        pr = MSCCLProgram("p", "allreduce", 256, 1024, 1.4)
        assert pr.speedup(64) == 1.0


class TestRegistry:
    def test_default_programs_loaded(self):
        reg = ProgramRegistry()
        assert len(reg) == len(DEFAULT_PROGRAMS)

    def test_factor_inside_window(self):
        reg = ProgramRegistry()
        assert reg.factor("allreduce", 8192, 8) > 1.0

    def test_factor_outside_window(self):
        reg = ProgramRegistry()
        assert reg.factor("allreduce", 8 << 20, 8) == 1.0

    def test_factor_unknown_collective(self):
        assert ProgramRegistry().factor("barrier", 8192, 8) == 1.0

    def test_best_picks_fastest(self):
        reg = ProgramRegistry(programs=())
        reg.load(MSCCLProgram("slow", "allreduce", 1, 1 << 20, 1.1))
        reg.load(MSCCLProgram("fast", "allreduce", 1, 1 << 20, 1.9))
        assert reg.best("allreduce", 1024, 8).name == "fast"

    def test_load_rejects_bad_speedup(self):
        with pytest.raises(ConfigError):
            ProgramRegistry().load(MSCCLProgram("bad", "allreduce", 1, 2, 0.0))

    def test_default_registry_singleton(self):
        assert default_registry() is default_registry()

    def test_msccl_window_matches_paper(self):
        """§4.3: MSCCL outperforms NCCL for 256 B - 256 KB."""
        reg = ProgramRegistry()
        assert reg.factor("allreduce", 255, 8) == 1.0
        assert reg.factor("allreduce", 300, 8) > 1.0
        assert reg.factor("allreduce", 256 * 1024, 8) > 1.0
