"""The oneCCL/Intel extension (the paper's §6 future work).

Proves the plug-in claim: a new vendor, link technology, system, and
CCL drop in through the registries, and every layer — capability
checks, tuning, the hybrid dispatcher, the DL trainer — picks them up
without modification.
"""

import numpy as np
import pytest

from repro.core import run
from repro.dl import horovod_preset, train
from repro.dl.models import tiny_mlp
from repro.hw.systems import make_system
from repro.hw.vendors import Vendor, default_ccl_for
from repro.mpi import DOUBLE_COMPLEX, FLOAT, SUM
from repro.omb.collective import osu_allreduce
from repro.omb.harness import OMBConfig
from repro.omb.stacks import make_stack
from repro.sim.engine import Engine
from repro.xccl.datatypes import backend_supports
from repro.xccl.registry import backend_for_vendor, get_backend


class TestVendorPlumbing:
    def test_vendor_enum(self):
        assert Vendor.INTEL.native_ccl == "oneccl"
        assert Vendor.INTEL.runtime_stack == "level-zero"
        assert default_ccl_for(Vendor.INTEL) == "oneccl"

    def test_backend_registered(self):
        be = get_backend("oneccl")
        assert be.name == "oneccl"
        assert Vendor.INTEL in be.vendors
        assert backend_for_vendor(Vendor.INTEL) is be

    def test_datatype_table(self):
        assert backend_supports("oneccl", FLOAT)
        assert not backend_supports("oneccl", DOUBLE_COMPLEX)

    def test_aurora_system(self):
        cluster = make_system("aurora", 2)
        assert cluster.device_count == 12
        assert cluster.devices[0].vendor is Vendor.INTEL
        assert cluster.devices[0].model == "Max1550"


class TestEndToEnd:
    def test_hybrid_runtime_on_aurora(self):
        def body(mpx):
            comm = mpx.COMM_WORLD
            small = mpx.device_array(16, fill=1.0)
            comm.Allreduce(small, mpx.device_array(16), SUM)
            big = mpx.device_array(1 << 20, fill=1.0)
            out = mpx.device_array(1 << 20)
            comm.Allreduce(big, out, SUM)
            stats = mpx.route_stats
            return (mpx.layer.backend_name, float(out.array[0]),
                    stats.mpi_calls, stats.xccl_calls)

        out = run(body, system="aurora", nodes=1)
        backend, value, mpi_calls, xccl_calls = out[0]
        assert backend == "oneccl"
        assert value == 6.0
        assert mpi_calls >= 1 and xccl_calls >= 1  # hybrid actually split

    def test_datatype_fallback_on_aurora(self):
        def body(mpx):
            z = mpx.device_array(1 << 16, dtype=np.complex128, fill=1j)
            out = mpx.device_array(1 << 16, dtype=np.complex128)
            mpx.COMM_WORLD.Allreduce(z, out, SUM)
            return (out.array[0], mpx.route_stats.total_fallbacks)

        value, fallbacks = run(body, system="aurora", nranks=4)[0]
        assert value == 4j
        assert fallbacks == 1

    def test_omb_runs_on_aurora(self):
        cluster = make_system("aurora", 1)
        cfg = OMBConfig(sizes=(64, 65536), warmup=1, iterations=2)

        def body(ctx):
            return osu_allreduce(ctx, make_stack(ctx, "pure-xccl"), cfg)

        stats = Engine(cluster, nranks=6).run(body)[0]
        # oneCCL launch floor shows in the small-message latency
        assert stats[64].avg_us >= get_backend("oneccl").params.launch_us

    def test_dl_training_on_aurora(self):
        cluster = make_system("aurora", 1)

        def body(ctx):
            stack = make_stack(ctx, "hybrid")
            return train(ctx, stack, tiny_mlp(), 32, steps=2,
                         config=horovod_preset("hybrid", "oneccl"))

        r = Engine(cluster, nranks=6).run(body)[0]
        assert r.img_per_sec > 0

    def test_pure_oneccl_horovod_preset(self):
        cluster = make_system("aurora", 1)

        def body(ctx):
            stack = make_stack(ctx, "ccl")
            return train(ctx, stack, tiny_mlp(), 32, steps=2,
                         config=horovod_preset("ccl", "oneccl"))

        assert Engine(cluster, nranks=4).run(body)[0].img_per_sec > 0

    def test_tuning_crossover_exists(self):
        from repro.core.tuning_table import tune_offline
        from repro.mpi.config import mvapich_gpu
        from repro.perfmodel import ccl_params
        from repro.perfmodel.shape import shape_of

        shape = shape_of(make_system("aurora", 2), range(12))
        table = tune_offline(shape, ccl_params("oneccl"), mvapich_gpu())
        x = table.crossover("allreduce")
        assert x is not None  # oneCCL wins somewhere

    def test_msccl_cannot_drive_intel(self):
        from repro.errors import CCLBackendUnavailable
        with pytest.raises(CCLBackendUnavailable):
            backend_for_vendor(Vendor.INTEL, "msccl")
