"""Tuning tables: offline tuner, lookup, serialization."""

import pytest

from repro.core.tuning_table import (
    TUNABLE_COLLECTIVES,
    TuningTable,
    cached_table,
    tune_offline,
)
from repro.errors import TuningTableError
from repro.hw.systems import make_system
from repro.mpi.config import mvapich_gpu
from repro.perfmodel import ccl_params
from repro.perfmodel.shape import shape_of

KIB = 1024


@pytest.fixture
def nccl_table():
    cluster = make_system("thetagpu", 1)
    shape = shape_of(cluster, range(8))
    return tune_offline(shape, ccl_params("nccl"), mvapich_gpu())


class TestTuner:
    def test_all_collectives_tuned(self, nccl_table):
        assert set(nccl_table.entries) == set(TUNABLE_COLLECTIVES)

    def test_mpi_wins_small_allreduce(self, nccl_table):
        assert nccl_table.choose("allreduce", 64) == "mpi"

    def test_ccl_wins_large_allreduce(self, nccl_table):
        assert nccl_table.choose("allreduce", 4 << 20) == "xccl"

    def test_crossover_monotone(self, nccl_table):
        """Once the CCL wins, it keeps winning (per compressed runs)."""
        routes = [nccl_table.choose("allreduce", 1 << k) for k in range(2, 23)]
        if "xccl" in routes:
            first = routes.index("xccl")
            assert all(r == "xccl" for r in routes[first:])

    def test_crossover_reported(self, nccl_table):
        x = nccl_table.crossover("allreduce")
        assert x is not None
        assert 4 * KIB <= x <= 256 * KIB  # paper ballpark: ~16 KB

    def test_hysteresis_biases_mpi(self):
        cluster = make_system("thetagpu", 1)
        shape = shape_of(cluster, range(8))
        plain = tune_offline(shape, ccl_params("nccl"), mvapich_gpu())
        biased = tune_offline(shape, ccl_params("nccl"), mvapich_gpu(),
                              hysteresis=3.0)
        assert (biased.crossover("allreduce") or 1 << 30) >= \
            (plain.crossover("allreduce") or 0)

    def test_hccl_crossover_higher_than_nccl(self):
        """The 270 us HCCL launch floor pushes its crossover far right."""
        theta = shape_of(make_system("thetagpu", 2), range(16))
        voy = shape_of(make_system("voyager", 2), range(16))
        t_n = tune_offline(theta, ccl_params("nccl"), mvapich_gpu())
        t_h = tune_offline(voy, ccl_params("hccl"), mvapich_gpu())
        xn = t_n.crossover("allreduce") or 1 << 40
        xh = t_h.crossover("allreduce") or 1 << 40
        assert xh > xn


class TestLookup:
    def test_unknown_collective(self, nccl_table):
        with pytest.raises(TuningTableError):
            nccl_table.choose("scan", 64)

    def test_malformed_thresholds(self):
        t = TuningTable("nccl", ("x",), entries={"allreduce": [(10, "mpi")]})
        with pytest.raises(TuningTableError):
            t.choose("allreduce", 100)  # no unbounded terminal entry

    def test_crossover_none_when_mpi_always(self):
        t = TuningTable("nccl", ("x",), entries={"bcast": [(-1, "mpi")]})
        assert t.crossover("bcast") is None


class TestSerialization:
    def test_roundtrip(self, nccl_table):
        restored = TuningTable.from_json(nccl_table.to_json())
        assert restored.backend == nccl_table.backend
        assert restored.entries == nccl_table.entries
        assert restored.shape_key == nccl_table.shape_key

    def test_from_dict_malformed(self):
        with pytest.raises(TuningTableError):
            TuningTable.from_dict({"backend": "x"})


class TestCache:
    def test_cached_identity(self):
        cluster = make_system("thetagpu", 1)
        shape = shape_of(cluster, range(8))
        a = cached_table(shape, ccl_params("nccl"), mvapich_gpu())
        b = cached_table(shape, ccl_params("nccl"), mvapich_gpu())
        assert a is b

    def test_cache_keys_differ_by_backend(self):
        cluster = make_system("thetagpu", 1)
        shape = shape_of(cluster, range(8))
        a = cached_table(shape, ccl_params("nccl"), mvapich_gpu())
        b = cached_table(shape, ccl_params("msccl"), mvapich_gpu())
        assert a is not b
