"""Fused group transport: bit-identity, ordering, counters, smoke.

``MPIX_GROUP_FUSION`` may only change how fast the simulator runs —
never what it computes.  These tests pin that contract for every
send-recv collective on every CCL stack: payload bytes AND virtual
clocks are bit-identical with fusion on and off, group flushes keep
per-(src, tag) FIFO order, and the fused paths actually engage
(counters > 0) so a silent fallback cannot masquerade as a pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import fastpath
from repro.core import runtime

#: (system, backend, single-node ranks) — one per CCL the paper ports.
#: Single-node runs are exactly reproducible (intra-node wires are
#: direction-tagged per pair), which is what makes bit-comparison valid.
STACKS = [
    ("thetagpu", None, 4),      # NCCL
    ("mri", None, 2),           # RCCL
    ("voyager", None, 4),       # HCCL
    ("thetagpu", "msccl", 4),   # MSCCL
]


def _sendrecv_body(mpx):
    """Run every send-recv collective of §3.3 (routed through the CCL
    grouped path by pure_xccl) with uneven counts including zeros;
    record payload bytes and the virtual clock after each call."""
    comm = mpx.COMM_WORLD
    ctx = comm.ctx
    p, r = comm.size, comm.rank
    log = []

    def snap(buf):
        log.append((buf.array.tobytes(), ctx.now))

    # alltoallv, uneven with zero blocks: count(i -> j) = (i + j) % 3
    sc = [(r + j) % 3 for j in range(p)]
    rc = [(i + r) % 3 for i in range(p)]
    sd = [sum(sc[:j]) for j in range(p)]
    rd = [sum(rc[:j]) for j in range(p)]
    send = ctx.device.zeros(max(1, sum(sc)), dtype=np.float32)
    send.array[:] = np.arange(send.array.size, dtype=np.float32) + 100 * r
    recv = ctx.device.zeros(max(1, sum(rc)), dtype=np.float32)
    for _ in range(2):
        comm.Alltoallv(send, sc, recv, rc, sd, rd)
        snap(recv)

    # uniform alltoall (delegates to alltoallv)
    s2 = ctx.device.zeros(3 * p, dtype=np.float32)
    s2.array[:] = np.arange(3 * p, dtype=np.float32) + r
    r2 = ctx.device.zeros(3 * p, dtype=np.float32)
    comm.Alltoall(s2, r2, count=3)
    snap(r2)

    # allgatherv, uneven
    counts = [i % 3 + 1 for i in range(p)]
    displs = [sum(counts[:j]) for j in range(p)]
    s3 = ctx.device.zeros(counts[r], dtype=np.float32)
    s3.array[:] = r + 1
    r3 = ctx.device.zeros(sum(counts), dtype=np.float32)
    comm.Allgatherv(s3, r3, counts, displs)
    snap(r3)

    # rooted: gather / gatherv / scatter / scatterv
    s4 = ctx.device.zeros(2, dtype=np.float32)
    s4.array[:] = r + 1
    r4 = ctx.device.zeros(2 * p, dtype=np.float32)
    comm.Gather(s4, r4, root=0, count=2)
    snap(r4)
    r5 = ctx.device.zeros(sum(counts), dtype=np.float32)
    comm.Gatherv(s3, r5, counts, displs, root=1 % p)
    snap(r5)
    s6 = ctx.device.zeros(2 * p, dtype=np.float32)
    s6.array[:] = np.arange(2 * p, dtype=np.float32)
    r6 = ctx.device.zeros(2, dtype=np.float32)
    comm.Scatter(s6, r6, root=0, count=2)
    snap(r6)
    s7 = ctx.device.zeros(sum(counts), dtype=np.float32)
    s7.array[:] = np.arange(sum(counts), dtype=np.float32) - r
    r7 = ctx.device.zeros(counts[r], dtype=np.float32)
    comm.Scatterv(s7, counts, r7, displs, root=0)
    snap(r7)
    return log


@pytest.mark.parametrize("system,backend,rpn", STACKS,
                         ids=[f"{s}-{b or 'native'}" for s, b, _ in STACKS])
def test_bit_identical_fusion_on_vs_off(system, backend, rpn):
    """Fusion on vs off: identical payload bytes AND virtual times for
    every send-recv collective on every CCL stack."""
    def run():
        return runtime.run(_sendrecv_body, system=system, nodes=1,
                           ranks_per_node=rpn, backend=backend,
                           mode="pure_xccl")

    prev = fastpath.set_fusion_enabled(False)
    try:
        off = run()
        fastpath.set_fusion_enabled(True)
        fastpath.STATS.reset()
        on = run()
        stats = fastpath.STATS.snapshot()
    finally:
        fastpath.set_fusion_enabled(prev)

    # the fused transport must actually have engaged
    assert stats["fusion_flushes"] > 0
    assert stats["fusion_exchanges"] > 0
    assert stats["fusion_msgs"] > 0

    assert len(on) == len(off) == rpn
    for rank, (a, b) in enumerate(zip(off, on)):
        for i, ((data_a, t_a), (data_b, t_b)) in enumerate(zip(a, b)):
            assert data_a == data_b, f"rank {rank} payload {i} differs"
            assert t_a == t_b, f"rank {rank} clock after op {i} differs"


def test_group_flush_preserves_pair_fifo():
    """Several sends to the same peer inside one group arrive in
    program order: MPI non-overtaking survives the bulk post_many."""
    from repro.xccl.api import (
        xcclGroupEnd,
        xcclGroupStart,
        xcclRecv,
        xcclSend,
        xcclStreamSynchronize,
    )
    from repro.mpi.datatypes import FLOAT

    def body(mpx):
        comm = mpx.COMM_WORLD
        ctx = comm.ctx
        xc = comm.coll.layer.ccl_comm(comm)
        peer = (comm.rank + 1) % comm.size
        src = (comm.rank - 1) % comm.size
        outs = [ctx.device.zeros(4, dtype=np.float32) for _ in range(3)]
        ins_ = [ctx.device.zeros(4, dtype=np.float32) for _ in range(3)]
        for i, o in enumerate(outs):
            o.array[:] = 10 * comm.rank + i
        xcclGroupStart(xc)
        for i in range(3):
            xcclSend(outs[i], 4, FLOAT, peer, xc)
            xcclRecv(ins_[i], 4, FLOAT, src, xc)
        xcclGroupEnd()
        xcclStreamSynchronize(xc)
        return [float(b.array[0]) for b in ins_]

    for flag in (True, False):
        prev = fastpath.set_fusion_enabled(flag)
        try:
            got = runtime.run(body, system="thetagpu", nodes=1,
                              ranks_per_node=4, mode="pure_xccl")
        finally:
            fastpath.set_fusion_enabled(prev)
        for rank, vals in enumerate(got):
            src = (rank - 1) % 4
            assert vals == [10.0 * src, 10.0 * src + 1, 10.0 * src + 2], \
                f"fusion={flag}: rank {rank} recvs out of order: {vals}"


def test_rooted_groups_do_not_rendezvous():
    """Gather uses the bulk path, not the whole-group rendezvous — leaf
    ranks must not be barriered behind the root's matching."""
    def body(mpx):
        comm = mpx.COMM_WORLD
        ctx = comm.ctx
        s = ctx.device.zeros(4, dtype=np.float32)
        s.array[:] = comm.rank
        r = ctx.device.zeros(4 * comm.size, dtype=np.float32)
        comm.Gather(s, r, root=0, count=4)
        return True

    prev = fastpath.set_fusion_enabled(True)
    try:
        fastpath.STATS.reset()
        assert all(runtime.run(body, system="thetagpu", nodes=1,
                               ranks_per_node=4, mode="pure_xccl"))
        stats = fastpath.STATS.snapshot()
    finally:
        fastpath.set_fusion_enabled(prev)
    assert stats["fusion_flushes"] > 0      # bulk transport engaged
    assert stats["fusion_exchanges"] == 0   # but no whole-group slot


def test_fusion_smoke_benchmark_round():
    """One fused benchmark round (tier-1-safe): the alltoallv loop from
    ``make bench-fusion`` runs fused end to end with exchanges > 0, so
    the fused path cannot silently regress to a fallback."""
    import importlib.util
    from pathlib import Path
    path = Path(__file__).resolve().parent.parent / "benchmarks" \
        / "bench_group_fusion.py"
    spec = importlib.util.spec_from_file_location("bench_group_fusion", path)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)

    prev = fastpath.set_fusion_enabled(True)
    try:
        fastpath.STATS.reset()
        ops, results = bench._run_once(bench._alltoallv_body, 1, 8)
        stats = fastpath.STATS.snapshot()
    finally:
        fastpath.set_fusion_enabled(prev)
    assert ops > 0
    assert len(results) == 8
    assert stats["fusion_exchanges"] > 0
    assert stats["fusion_fallbacks"] == 0
    assert stats["fusion_msgs"] >= stats["fusion_flushes"]


def test_fusion_toggle_restores():
    prev = fastpath.set_fusion_enabled(False)
    try:
        assert not fastpath.fusion_enabled()
        fastpath.set_fusion_enabled(True)
        assert fastpath.fusion_enabled()
    finally:
        fastpath.set_fusion_enabled(prev)
