"""One-sided communication: windows, put/get/accumulate, epochs."""

import numpy as np

from repro.errors import MPICommError, MPIRankError
from repro.mpi import DOUBLE, PROD, SUM, Communicator
from repro.mpi.rma import Win


def world(ctx):
    return Communicator.world(ctx)


class TestWindowLifecycle:
    def test_allocate_exposes_zeros(self, thetagpu1, spmd):
        def body(ctx):
            win = Win.allocate(world(ctx), 8)
            return float(np.sum(win.local.array))

        assert spmd(thetagpu1, body, nranks=4) == [0.0] * 4

    def test_shared_view_across_ranks(self, thetagpu1, spmd):
        def body(ctx):
            win = Win.allocate(world(ctx), 4)
            return all(win._target(r) is not None
                       for r in range(win.comm.size))

        assert all(spmd(thetagpu1, body, nranks=4))

    def test_use_after_free(self, thetagpu1, spmd):
        def body(ctx):
            win = Win.allocate(world(ctx), 4)
            win.free()
            try:
                win.put(np.zeros(1, dtype=np.float32), 0)
            except MPICommError:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=2) == ["rejected"] * 2

    def test_negative_size(self, thetagpu1, spmd):
        def body(ctx):
            try:
                Win.allocate(world(ctx), -1)
            except MPICommError:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=2) == ["rejected"] * 2


class TestPutGet:
    def test_put_visible_after_fence(self, thetagpu1, spmd):
        """The mpi4py tutorial's RMA pattern: rank 0 fills rank 1's
        window; everyone reads after the fence."""

        def body(ctx):
            comm = world(ctx)
            win = Win.allocate(comm, 10)
            win.fence()
            if ctx.rank == 0:
                buf = ctx.device.empty(10)
                buf.fill(42.0)
                win.put(buf, target_rank=1)
            win.fence()
            return float(win.local.array[0])

        out = spmd(thetagpu1, body, nranks=3)
        assert out == [0.0, 42.0, 0.0]

    def test_get_reads_remote(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            win = Win.allocate(comm, 4)
            win.local.array[:] = float(ctx.rank + 1) * 10
            win.fence()
            got = ctx.device.zeros(4)
            win.get(got, target_rank=(ctx.rank + 1) % comm.size)
            win.fence()
            return float(got.array[0])

        out = spmd(thetagpu1, body, nranks=4)
        assert out == [20.0, 30.0, 40.0, 10.0]

    def test_offset_window_access(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            win = Win.allocate(comm, 8)
            win.fence()
            if ctx.rank == 0:
                part = ctx.device.empty(2)
                part.fill(7.0)
                win.put(part, target_rank=1, target_offset=3, count=2)
            win.fence()
            return list(win.local.array)

        out = spmd(thetagpu1, body, nranks=2)
        assert out[1] == [0, 0, 0, 7, 7, 0, 0, 0]

    def test_out_of_range_rejected(self, thetagpu1, spmd):
        def body(ctx):
            win = Win.allocate(world(ctx), 4)
            try:
                win.put(np.zeros(8, dtype=np.float32), 0)
            except MPICommError:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=2) == ["rejected"] * 2

    def test_bad_target_rank(self, thetagpu1, spmd):
        def body(ctx):
            win = Win.allocate(world(ctx), 4)
            try:
                win.get(np.zeros(4, dtype=np.float32), 9)
            except MPIRankError:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=2) == ["rejected"] * 2

    def test_rma_costs_virtual_time(self, thetagpu2, spmd):
        """Remote puts cost more across nodes than within one."""

        def body(ctx):
            comm = world(ctx)
            win = Win.allocate(comm, 1 << 18)
            win.fence()
            t0 = ctx.now
            if ctx.rank == 0:
                win.put(ctx.device.zeros(1 << 18), target_rank=1)
            win.fence()
            return ctx.now - t0

        intra = spmd(thetagpu2, body, nranks=2)[0]
        inter = spmd(thetagpu2, body, nranks=2, ranks_per_node=1)[0]
        assert inter > intra


class TestAccumulate:
    def test_sum_from_all_ranks(self, thetagpu1, spmd):
        """Every rank accumulates into rank 0 — the one-sided
        reduction idiom."""

        def body(ctx):
            comm = world(ctx)
            win = Win.allocate(comm, 4, DOUBLE)
            win.fence()
            contrib = ctx.device.empty(4, dtype=np.float64)
            contrib.fill(float(ctx.rank + 1))
            win.accumulate(contrib, target_rank=0, op=SUM)
            win.fence()
            return float(win.local.array[0])

        out = spmd(thetagpu1, body, nranks=4)
        assert out[0] == 10.0  # 1+2+3+4

    def test_prod(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            win = Win.allocate(comm, 2, DOUBLE)
            win.local.array[:] = 1.0
            win.fence()
            two = ctx.device.empty(2, dtype=np.float64)
            two.fill(2.0)
            win.accumulate(two, target_rank=0, op=PROD)
            win.fence()
            return float(win.local.array[0])

        assert spmd(thetagpu1, body, nranks=3)[0] == 8.0

    def test_passive_target_lock_unlock(self, thetagpu1, spmd):
        def body(ctx):
            comm = world(ctx)
            win = Win.allocate(comm, 1, DOUBLE)
            win.fence()
            one = ctx.device.empty(1, dtype=np.float64)
            one.fill(1.0)
            win.lock(0)
            win.accumulate(one, target_rank=0, op=SUM)
            win.unlock(0)
            comm.Barrier()
            return float(win.local.array[0])

        out = spmd(thetagpu1, body, nranks=8)
        assert out[0] == 8.0
