"""Virtual clock semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance(self):
        c = VirtualClock()
        assert c.advance(3.0) == 3.0
        assert c.advance(2.0) == 5.0

    def test_advance_negative_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance(-1.0)

    def test_merge_takes_max(self):
        c = VirtualClock(10.0)
        assert c.merge(5.0) == 10.0
        assert c.merge(15.0) == 15.0

    def test_reset(self):
        c = VirtualClock()
        c.advance(10.0)
        c.reset()
        assert c.now == 0.0

    @given(st.lists(st.one_of(
        st.tuples(st.just("advance"), st.floats(0, 1e6)),
        st.tuples(st.just("merge"), st.floats(0, 1e6))), max_size=50))
    def test_monotone_under_any_sequence(self, ops):
        c = VirtualClock()
        prev = 0.0
        for kind, value in ops:
            if kind == "advance":
                c.advance(value)
            else:
                c.merge(value)
            assert c.now >= prev
            prev = c.now
