"""Cartesian topologies: dims_create, coordinates, shifts, sub-grids."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MPICommError, MPIRankError
from repro.mpi import SUM, Communicator
from repro.mpi.cart import CartComm, dims_create


class TestDimsCreate:
    def test_balanced_2d(self):
        assert sorted(dims_create(16, 2)) == [4, 4]
        assert sorted(dims_create(12, 2)) == [3, 4]

    def test_3d(self):
        dims = dims_create(8, 3)
        assert sorted(dims) == [2, 2, 2]

    def test_constraint_respected(self):
        dims = dims_create(16, 2, [8, 0])
        assert dims == [8, 2]

    def test_impossible_constraint(self):
        with pytest.raises(MPICommError):
            dims_create(16, 2, [5, 0])

    def test_prime(self):
        assert sorted(dims_create(7, 2)) == [1, 7]

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 256), nd=st.integers(1, 4))
    def test_product_property(self, n, nd):
        dims = dims_create(n, nd)
        prod = 1
        for d in dims:
            prod *= d
        assert prod == n
        assert all(d >= 1 for d in dims)


class TestCoordinates:
    def _grid(self, ctx, dims, periods=None):
        return CartComm(Communicator.world(ctx), dims, periods)

    def test_row_major_layout(self, thetagpu1, spmd):
        def body(ctx):
            grid = self._grid(ctx, (2, 4))
            return grid.coords

        out = spmd(thetagpu1, body, nranks=8)
        assert out[0] == (0, 0)
        assert out[3] == (0, 3)
        assert out[4] == (1, 0)
        assert out[7] == (1, 3)

    def test_roundtrip(self, thetagpu1, spmd):
        def body(ctx):
            grid = self._grid(ctx, (2, 2, 2))
            return all(grid.coords_to_rank(grid.rank_to_coords(r)) == r
                       for r in range(8))

        assert all(spmd(thetagpu1, body, nranks=8))

    def test_size_mismatch(self, thetagpu1, spmd):
        def body(ctx):
            try:
                self._grid(ctx, (3, 3))
            except MPICommError:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=8) == ["rejected"] * 8

    def test_periodic_wrap(self, thetagpu1, spmd):
        def body(ctx):
            grid = self._grid(ctx, (4,), periods=[True])
            return grid.coords_to_rank([-1])

        assert spmd(thetagpu1, body, nranks=4)[0] == 3

    def test_nonperiodic_out_of_range(self, thetagpu1, spmd):
        def body(ctx):
            grid = self._grid(ctx, (4,))
            try:
                grid.coords_to_rank([4])
            except MPIRankError:
                return "rejected"

        assert spmd(thetagpu1, body, nranks=4)[0] == "rejected"


class TestShift:
    def test_interior_and_edges(self, thetagpu1, spmd):
        def body(ctx):
            grid = CartComm(Communicator.world(ctx), (4,))
            return grid.shift(0, 1)

        out = spmd(thetagpu1, body, nranks=4)
        assert out[0] == (None, 1)
        assert out[1] == (0, 2)
        assert out[3] == (2, None)

    def test_periodic_shift(self, thetagpu1, spmd):
        def body(ctx):
            grid = CartComm(Communicator.world(ctx), (4,), periods=[True])
            return grid.shift(0, 1)

        out = spmd(thetagpu1, body, nranks=4)
        assert out[0] == (3, 1)
        assert out[3] == (2, 0)

    def test_halo_exchange_on_grid(self, thetagpu1, spmd):
        """A ring halo exchange addressed by shift partners."""

        def body(ctx):
            comm = Communicator.world(ctx)
            grid = CartComm(comm, (comm.size,), periods=[True])
            left, right = grid.shift(0, 1)
            send = ctx.device.zeros(4)
            send.fill(float(ctx.rank))
            recv = ctx.device.zeros(4)
            comm.Sendrecv(send, right, recv, left)
            return recv.array[0]

        out = spmd(thetagpu1, body, nranks=4)
        assert out == [3.0, 0.0, 1.0, 2.0]


class TestSub:
    def test_row_communicators(self, thetagpu1, spmd):
        def body(ctx):
            comm = Communicator.world(ctx)
            grid = CartComm(comm, (2, 4))
            rows = grid.sub([False, True])  # keep columns: one comm per row
            s = ctx.device.zeros(4)
            s.fill(1.0)
            r = ctx.device.zeros(4)
            rows.comm.Allreduce(s, r, SUM)
            return (rows.comm.size, r.array[0])

        out = spmd(thetagpu1, body, nranks=8)
        assert all(o == (4, 4.0) for o in out)

    def test_sub_dims(self, thetagpu1, spmd):
        def body(ctx):
            grid = CartComm(Communicator.world(ctx), (2, 2, 2))
            sub = grid.sub([True, False, True])
            return sub.dims

        assert spmd(thetagpu1, body, nranks=8)[0] == (2, 2)
