"""The MPIxCCL runtime facade (run / MPIxContext)."""

import numpy as np
import pytest

from repro.core import DispatchMode, run
from repro.core.fallback import RouteDecision, Route, FallbackReason, RouteStats
from repro.errors import ConfigError
from repro.hw.systems import make_system
from repro.mpi import SUM


class TestRun:
    def test_by_system_name(self):
        out = run(lambda mpx: mpx.size, system="mri", nodes=2)
        assert out == [4] * 4

    def test_by_prebuilt_cluster(self):
        cluster = make_system("voyager", 1)
        assert run(lambda mpx: mpx.layer.backend_name,
                   system=cluster, nranks=2) == ["hccl", "hccl"]

    def test_mode_as_string(self):
        out = run(lambda mpx: mpx.COMM_WORLD.coll.mode,
                  system="thetagpu", nranks=2, mode="pure_mpi")
        assert out == [DispatchMode.PURE_MPI] * 2

    def test_extra_args_forwarded(self):
        def body(mpx, a, b=0):
            return a + b + mpx.rank

        assert run(body, system="thetagpu", nranks=2, a=10, b=5) == [15, 16]

    def test_invalid_system(self):
        with pytest.raises(ConfigError):
            run(lambda mpx: None, system="summit")


class TestContext:
    def test_device_array(self):
        def body(mpx):
            buf = mpx.device_array(16, dtype=np.float64, fill=2.5)
            return (buf.on_device, buf.dtype == np.float64,
                    float(buf.array.sum()))

        assert run(body, system="thetagpu", nranks=1)[0] == (True, True, 40.0)

    def test_attach_derived_communicator(self):
        def body(mpx):
            sub = mpx.COMM_WORLD.Split(color=mpx.rank % 2)
            mpx.attach(sub)
            s = mpx.device_array(1 << 18, fill=1.0)
            r = mpx.device_array(1 << 18)
            sub.Allreduce(s, r, SUM)
            return (r.array[0], sub.coll.stats.xccl_calls)

        out = run(body, system="thetagpu")
        assert all(v == (4.0, 1) for v in out)

    def test_route_stats_property(self):
        def body(mpx):
            s = mpx.device_array(1 << 20)
            mpx.COMM_WORLD.Allreduce(s, mpx.device_array(1 << 20), SUM)
            return mpx.route_stats.xccl_calls

        assert run(body, system="thetagpu", nranks=2) == [1, 1]


class TestRouteStats:
    def test_summary_format(self):
        stats = RouteStats()
        stats.record(RouteDecision(Route.XCCL), "allreduce")
        stats.record(RouteDecision(Route.MPI, FallbackReason.DATATYPE),
                     "allreduce")
        text = stats.summary()
        assert "xccl=1" in text
        assert "mpi=1" in text
        assert "datatype" in text

    def test_tuning_not_counted_as_fallback(self):
        stats = RouteStats()
        stats.record(RouteDecision(Route.MPI, FallbackReason.TUNING), "bcast")
        assert stats.total_fallbacks == 0
        assert stats.mpi_calls == 1

    def test_is_fallback_classification(self):
        assert RouteDecision(Route.MPI, FallbackReason.DATATYPE).is_fallback
        assert not RouteDecision(Route.MPI, FallbackReason.MODE).is_fallback
        assert not RouteDecision(Route.XCCL).is_fallback
