"""ASCII table formatting."""

import pytest

from repro.util.tables import ascii_table, omb_header


class TestAsciiTable:
    def test_basic_layout(self):
        text = ascii_table(["Size", "Lat"], [[4, 1.5], [1024, 20.25]])
        lines = text.splitlines()
        assert lines[0].split() == ["Size", "Lat"]
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = ascii_table(["a"], [[1]], title="hello")
        assert text.splitlines()[0] == "# hello"

    def test_float_precision_small(self):
        text = ascii_table(["v"], [[0.1234567]])
        assert "0.1235" in text

    def test_float_precision_large(self):
        text = ascii_table(["v"], [[137031.4]])
        assert "137031" in text

    def test_zero(self):
        assert "0.00" in ascii_table(["v"], [[0.0]])

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])

    def test_right_alignment(self):
        text = ascii_table(["value"], [[7]])
        row = text.splitlines()[-1]
        assert row.endswith("7")

    def test_left_alignment_option(self):
        text = ascii_table(["value"], [["x"]], right_align=False)
        assert text.splitlines()[-1].startswith("x")


class TestOMBHeader:
    def test_contents(self):
        h = omb_header("osu_allreduce", "thetagpu", "nccl", 8, extra="note")
        assert "osu_allreduce" in h
        assert "thetagpu" in h
        assert "nccl" in h
        assert "Ranks: 8" in h
        assert "# note" in h

    def test_no_extra(self):
        h = omb_header("osu_bw", "mri", "rccl", 2)
        assert len(h.splitlines()) == 2
