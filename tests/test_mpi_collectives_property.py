"""Property-based collective tests (hypothesis).

Random counts, rank counts, values, ops, and dtypes against numpy
references — one engine run per example, so examples are capped low
but each exercises a full SPMD execution.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hw.systems import make_system
from repro.mpi import MAX, MIN, SUM, Communicator
from repro.mpi.coll import MPICollDispatcher
from repro.sim.engine import run_spmd

SETTINGS = dict(max_examples=12, deadline=None)

OPS = {
    "sum": (SUM, lambda vs: np.sum(vs, axis=0)),
    "max": (MAX, lambda vs: np.max(vs, axis=0)),
    "min": (MIN, lambda vs: np.min(vs, axis=0)),
}


def _comm(ctx, force=None):
    comm = Communicator.world(ctx)
    comm.coll = MPICollDispatcher(force=force)
    return comm


@st.composite
def allreduce_case(draw):
    p = draw(st.integers(min_value=1, max_value=6))
    count = draw(st.integers(min_value=1, max_value=300))
    op_name = draw(st.sampled_from(sorted(OPS)))
    algo = draw(st.sampled_from(["recursive_doubling", "ring"]))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    return p, count, op_name, algo, seed


class TestAllreduceProperty:
    @settings(**SETTINGS)
    @given(allreduce_case())
    def test_matches_numpy(self, case):
        p, count, op_name, algo, seed = case
        op, ref = OPS[op_name]
        rng = np.random.default_rng(seed)
        inputs = rng.integers(-50, 50, size=(p, count)).astype(np.float64)
        cluster = make_system("thetagpu", 1)

        def body(ctx):
            comm = _comm(ctx, algo)
            send = ctx.device.from_numpy(inputs[ctx.rank])
            recv = ctx.device.zeros(count, dtype=np.float64)
            comm.Allreduce(send, recv, op)
            return recv.to_numpy()

        outs = run_spmd(cluster, body, nranks=p, progress_timeout_s=20.0)
        expect = ref(inputs)
        for out in outs:
            assert np.allclose(out, expect)


@st.composite
def alltoall_case(draw):
    p = draw(st.integers(min_value=1, max_value=6))
    block = draw(st.integers(min_value=1, max_value=64))
    algo = draw(st.sampled_from(["scattered", "pairwise", "bruck"]))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    return p, block, algo, seed


class TestAlltoallProperty:
    @settings(**SETTINGS)
    @given(alltoall_case())
    def test_transpose_identity(self, case):
        p, block, algo, seed = case
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 1000, size=(p, p, block)).astype(np.int64)
        cluster = make_system("thetagpu", 1)

        def body(ctx):
            comm = _comm(ctx, algo)
            send = ctx.device.from_numpy(data[ctx.rank].reshape(-1))
            recv = ctx.device.zeros(p * block, dtype=np.int64)
            comm.Alltoall(send, recv)
            return recv.to_numpy().reshape(p, block)

        outs = run_spmd(cluster, body, nranks=p, progress_timeout_s=20.0)
        # out[dst][src] must equal data[src][dst] (global transpose)
        for dst, out in enumerate(outs):
            for src in range(p):
                assert np.array_equal(out[src], data[src][dst])


@st.composite
def gather_case(draw):
    p = draw(st.integers(min_value=1, max_value=6))
    count = draw(st.integers(min_value=1, max_value=100))
    root = draw(st.integers(min_value=0, max_value=5))
    algo = draw(st.sampled_from(["linear", "binomial"]))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    return p, count, root % p, algo, seed


class TestGatherProperty:
    @settings(**SETTINGS)
    @given(gather_case())
    def test_concatenation(self, case):
        p, count, root, algo, seed = case
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((p, count))
        cluster = make_system("thetagpu", 1)

        def body(ctx):
            comm = _comm(ctx, algo)
            send = ctx.device.from_numpy(data[ctx.rank])
            recv = ctx.device.zeros(count * p, dtype=np.float64)
            comm.Gather(send, recv, root=root)
            return recv.to_numpy() if ctx.rank == root else None

        outs = run_spmd(cluster, body, nranks=p, progress_timeout_s=20.0)
        assert np.allclose(outs[root], data.reshape(-1))


@st.composite
def bcast_case(draw):
    p = draw(st.integers(min_value=1, max_value=6))
    count = draw(st.integers(min_value=1, max_value=400))
    root = draw(st.integers(min_value=0, max_value=5))
    algo = draw(st.sampled_from(["binomial", "scatter_ring_allgather"]))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    return p, count, root % p, algo, seed


class TestBcastProperty:
    @settings(**SETTINGS)
    @given(bcast_case())
    def test_everyone_gets_roots_data(self, case):
        p, count, root, algo, seed = case
        rng = np.random.default_rng(seed)
        payload = rng.standard_normal(count)
        cluster = make_system("thetagpu", 1)

        def body(ctx):
            comm = _comm(ctx, algo)
            buf = ctx.device.zeros(count, dtype=np.float64)
            if ctx.rank == root:
                buf.copy_from(payload)
            comm.Bcast(buf, root=root)
            return buf.to_numpy()

        for out in run_spmd(cluster, body, nranks=p, progress_timeout_s=20.0):
            assert np.array_equal(out, payload)


class TestVirtualTimeInvariants:
    @settings(**SETTINGS)
    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=1, max_value=5000))
    def test_collective_time_positive_and_uniform_finish(self, p, count):
        cluster = make_system("thetagpu", 1)

        def body(ctx):
            comm = _comm(ctx)
            send = ctx.device.zeros(count)
            recv = ctx.device.zeros(count)
            t0 = ctx.now
            comm.Allreduce(send, recv, SUM)
            return ctx.now - t0

        times = run_spmd(cluster, body, nranks=p, progress_timeout_s=20.0)
        assert all(t > 0 for t in times)

    @settings(**SETTINGS)
    @given(st.integers(min_value=2, max_value=5))
    def test_larger_messages_cost_more(self, p):
        cluster = make_system("thetagpu", 1)

        def body(ctx):
            comm = _comm(ctx, "ring")
            out = []
            for count in (256, 262144):
                send = ctx.device.zeros(count)
                recv = ctx.device.zeros(count)
                comm.Barrier()
                t0 = ctx.now
                comm.Allreduce(send, recv, SUM)
                out.append(ctx.now - t0)
            return out

        small, large = run_spmd(cluster, body, nranks=p,
                                progress_timeout_s=20.0)[0]
        assert large > small
