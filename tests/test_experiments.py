"""Experiment registry, quick-scale runs, anchor machinery, report."""

import pytest

from repro.errors import ConfigError
from repro.experiments import all_experiments, get_experiment, run_experiment
from repro.experiments.registry import AnchorCheck
from repro.experiments.report import experiment_report
from repro.util.records import ResultSet

ALL_IDS = ("table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7",
           "fig8", "fig9", "fig10")


class TestRegistry:
    def test_every_table_and_figure_registered(self):
        ids = {e.id for e in all_experiments()}
        assert ids == set(ALL_IDS)

    def test_unknown_id(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")

    def test_every_experiment_has_checks(self):
        for exp in all_experiments():
            assert len(exp.checks) >= 2, exp.id

    def test_anchor_evaluation(self):
        check = AnchorCheck("x", 100.0, lambda rs: 110.0, rel_tol=0.2)
        measured, passed, dev = check.evaluate(ResultSet())
        assert measured == 110.0
        assert passed
        assert dev == pytest.approx(0.1)

    def test_anchor_fails_outside_tol(self):
        check = AnchorCheck("x", 100.0, lambda rs: 300.0, rel_tol=0.2)
        assert not check.evaluate(ResultSet())[1]


class TestQuickRuns:
    """Each experiment runs end to end at quick scale and produces a
    sane, plottable result set."""

    @pytest.mark.parametrize("exp_id", ["table1", "fig1"])
    def test_model_experiments(self, exp_id):
        results = run_experiment(exp_id, scale="quick")
        assert len(results) > 0
        assert all(r.value >= 0 for r in results)

    def test_fig3_quick(self):
        results = run_experiment("fig3", scale="quick")
        # 4 backends x 3 metrics
        assert len(results.series_names()) == 12

    def test_fig6_quick(self):
        results = run_experiment("fig6", scale="quick")
        colls = {r.meta["collective"] for r in results}
        assert colls == {"allreduce", "reduce", "bcast", "alltoall"}

    def test_fig5_quick_panel_structure(self):
        results = run_experiment("fig5", scale="quick")
        nccl_panel = results.filter(
            lambda r: r.experiment == "fig5:allreduce:nccl")
        names = set(nccl_panel.series_names())
        assert "Proposed Hybrid xCCL" in names
        assert "Pure NCCL" in names
        assert "Open MPI + UCX + UCC" in names

    def test_fig10_quick(self):
        results = run_experiment("fig10", scale="quick")
        assert "Pure MSCCL" in results.series_names()

    @pytest.mark.slow
    def test_fig9_quick_overhead_small(self):
        results = run_experiment("fig9", scale="quick")
        x = results.filter(lambda r: r.series == "Proposed Hybrid xCCL"
                           and r.x == 128.0)[0].value
        h = results.filter(lambda r: r.series == "Pure HCCL"
                           and r.x == 128.0)[0].value
        assert abs(x - h) / h < 0.15


class TestReport:
    def test_section_renders(self):
        exp = get_experiment("table1")
        text = experiment_report(exp, exp.run("quick"))
        assert "table1" in text
        assert "| anchor |" in text
        assert "yes" in text

    def test_render_table1(self):
        from repro.experiments.table1_systems import render, run
        text = render(run())
        assert "thetagpu" in text and "voyager" in text
