"""Closed-form model behaviour and calibration anchors."""

import pytest

from repro.errors import ConfigError
from repro.hw.systems import make_system
from repro.mpi.config import mvapich_gpu, openmpi_ucx
from repro.perfmodel import ccl_models, ccl_params, mpi_models
from repro.perfmodel.params import BACKEND_PARAMS
from repro.perfmodel.shape import shape_of

M4 = 4 << 20


@pytest.fixture
def theta_shape():
    return shape_of(make_system("thetagpu", 1), range(8))


@pytest.fixture
def theta_multi():
    return shape_of(make_system("thetagpu", 4), range(32))


class TestShape:
    def test_single_node(self, theta_shape):
        assert theta_shape.p == 8
        assert theta_shape.nodes == 1
        assert not theta_shape.spans_nodes
        assert theta_shape.inter is None

    def test_multi_node(self, theta_multi):
        assert theta_multi.nodes == 4
        assert theta_multi.ppn == 8
        assert theta_multi.spans_nodes

    def test_bus_division(self):
        shape = shape_of(make_system("mri", 1), range(2))
        assert not shape.switched

    def test_nic_requires_fabric(self, theta_shape):
        from repro.errors import TopologyError
        with pytest.raises(TopologyError):
            theta_shape.nic_beta(1.0)

    def test_bottleneck_beta_inter_is_min(self, theta_multi):
        b = theta_multi.bottleneck_beta(1.0, 1.0)
        assert b == pytest.approx(theta_multi.inter.beta_bpus)

    def test_empty_rankset_rejected(self):
        from repro.errors import TopologyError
        with pytest.raises(TopologyError):
            shape_of(make_system("mri", 1), [])


class TestCCLModels:
    def test_p2p_anchor_nccl(self):
        cluster = make_system("thetagpu", 1)
        path = cluster.path(cluster.devices[0], cluster.devices[1])
        t = ccl_models.p2p_time(ccl_params("nccl"), path, M4)
        assert t == pytest.approx(56.0, rel=0.1)

    def test_p2p_anchor_hccl_inter(self):
        cluster = make_system("voyager", 2)
        path = cluster.path(cluster.devices[0], cluster.devices[8])
        t = ccl_models.p2p_time(ccl_params("hccl"), path, M4)
        assert t == pytest.approx(835.0, rel=0.1)

    def test_launch_floor_dominates_small(self, theta_shape):
        for name, params in BACKEND_PARAMS.items():
            t = ccl_models.allreduce_time(params, theta_shape, 4)
            assert t >= params.launch_us

    def test_roughly_monotone_in_size(self, theta_shape):
        # protocol/segmentation switches produce mild dips (real NCCL
        # latency curves do the same); bound them at 30%
        params = ccl_params("nccl")
        prev = 0.0
        for k in range(2, 23):
            t = ccl_models.allreduce_time(params, theta_shape, 1 << k)
            assert t >= prev * 0.7
            prev = t
        # and the 4 MB point costs clearly more than the 4 B point
        small = ccl_models.allreduce_time(params, theta_shape, 4)
        large = ccl_models.allreduce_time(params, theta_shape, 4 << 20)
        assert large > small

    def test_msccl_beats_nccl212_midrange(self, theta_shape):
        msccl = ccl_models.allreduce_time(ccl_params("msccl"), theta_shape,
                                          16 * 1024)
        from repro.xccl.registry import get_backend
        nccl212 = ccl_models.allreduce_time(get_backend("nccl-2.12").params,
                                            theta_shape, 16 * 1024)
        assert msccl < nccl212

    def test_single_rank_is_launch_only(self):
        shape = shape_of(make_system("thetagpu", 1), range(1))
        t = ccl_models.allreduce_time(ccl_params("nccl"), shape, M4)
        assert t == ccl_params("nccl").launch_us

    def test_unknown_collective(self, theta_shape):
        with pytest.raises(ConfigError):
            ccl_models.collective_time(ccl_params("nccl"), theta_shape,
                                       "scan", 4)

    def test_alltoall_scales_with_ranks(self):
        p8 = shape_of(make_system("thetagpu", 1), range(8))
        p4 = shape_of(make_system("thetagpu", 1), range(4))
        params = ccl_params("nccl")
        assert ccl_models.alltoall_time(params, p8, 65536) > \
            ccl_models.alltoall_time(params, p4, 65536)


class TestMPIModels:
    def test_monotone_in_size(self, theta_shape):
        cfg = mvapich_gpu()
        prev = 0.0
        for k in range(2, 23):
            t = mpi_models.allreduce_time(cfg, theta_shape, 1 << k)
            assert t >= prev * 0.98  # algorithm switches allow tiny dips
            prev = t

    def test_openmpi_slower_than_mvapich(self, theta_shape):
        for coll in ("allreduce", "bcast", "alltoall"):
            a = mpi_models.collective_time(mvapich_gpu(), theta_shape, coll,
                                           4096)
            b = mpi_models.collective_time(openmpi_ucx(), theta_shape, coll,
                                           4096)
            assert b > a

    def test_multi_node_slower(self, theta_shape, theta_multi):
        cfg = mvapich_gpu()
        t1 = mpi_models.allreduce_time(cfg, theta_shape, 4096)
        t4 = mpi_models.allreduce_time(cfg, theta_multi, 4096)
        assert t4 > t1

    def test_unknown_collective(self, theta_shape):
        with pytest.raises(ConfigError):
            mpi_models.collective_time(mvapich_gpu(), theta_shape, "scan", 4)

    def test_barrier_positive(self, theta_multi):
        assert mpi_models.barrier_time(mvapich_gpu(), theta_multi) > 0


class TestEngineModelAgreement:
    """The analytic models must track the engine on small comms —
    they drive the hybrid routing, so systematic bias would misroute."""

    @pytest.mark.parametrize("coll,sizes", [
        ("allreduce", (1024, 262144)),
        ("bcast", (1024, 262144)),
        ("allgather", (1024, 65536)),
    ])
    def test_within_2x(self, spmd, coll, sizes):
        from repro.mpi import Communicator
        from repro.omb.collective import COLLECTIVE_BENCHMARKS
        from repro.omb.harness import OMBConfig

        cluster = make_system("thetagpu", 1)
        shape = shape_of(cluster, range(8))
        cfg = mvapich_gpu()
        bench = COLLECTIVE_BENCHMARKS[coll]
        config = OMBConfig(sizes=sizes, warmup=1, iterations=3)

        def body(ctx):
            comm = Communicator.world(ctx, cfg)
            return bench(ctx, comm, config)

        stats = spmd(cluster, body)[0]
        for size in sizes:
            engine_t = stats[size].avg_us
            model_t = mpi_models.collective_time(cfg, shape, coll, size)
            ratio = model_t / engine_t
            assert 0.4 < ratio < 2.5, (coll, size, engine_t, model_t)
