"""Chrome-trace export, trace summaries, and the mpix-tune CLI."""

import json


from repro.mpi import SUM, Communicator
from repro.sim.engine import Engine
from repro.sim.timeline import chrome_trace, save_chrome_trace, summarize
from repro.sim.tracing import Trace, TraceEvent


def _traced_run(cluster, nranks=2):
    engine = Engine(cluster, nranks=nranks, trace=True)

    def body(ctx):
        comm = Communicator.world(ctx)
        s = ctx.device.zeros(4096)
        r = ctx.device.zeros(4096)
        comm.Allreduce(s, r, SUM)
        return ctx.trace

    return engine.run(body)


class TestChromeTrace:
    def test_events_emitted(self, thetagpu1):
        traces = _traced_run(thetagpu1, nranks=4)
        assert all(len(t) > 0 for t in traces)

    def test_chrome_format(self, thetagpu1):
        traces = _traced_run(thetagpu1, nranks=2)
        doc = chrome_trace(traces)
        assert "traceEvents" in doc
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert slices and metas
        for s in slices:
            assert s["dur"] > 0
            assert s["tid"] in (0, 1)
            assert s["cat"] in ("p2p", "ccl", "compute", "other")

    def test_thread_names_per_rank(self, thetagpu1):
        doc = chrome_trace(_traced_run(thetagpu1, nranks=3))
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("name") == "thread_name"}
        assert names == {"rank 0", "rank 1", "rank 2"}

    def test_save_is_valid_json(self, thetagpu1, tmp_path):
        path = tmp_path / "trace.json"
        save_chrome_trace(_traced_run(thetagpu1), str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"

    def test_summarize(self, thetagpu1):
        summary = summarize(_traced_run(thetagpu1, nranks=2))
        assert "rank0" in summary
        assert any(k in summary["rank0"] for k in ("send", "recv"))

    def test_disabled_trace_records_nothing(self):
        t = Trace(0, enabled=False)
        t.record("send", 0.0, 1.0)
        assert len(t) == 0

    def test_trace_filters_and_totals(self):
        t = Trace(0)
        t.record("send", 0.0, 2.0, peer=1, nbytes=64)
        t.record("recv", 2.0, 5.0, peer=1, nbytes=64)
        assert len(t.of_kind("send")) == 1
        assert t.total_time() == 5.0
        assert t.total_time("recv") == 3.0
        t.clear()
        assert len(t) == 0

    def test_event_duration(self):
        ev = TraceEvent(0, "send", 1.0, 4.5)
        assert ev.duration_us == 3.5


class TestTuneCLI:
    def test_show(self, capsys):
        from repro.core.tune_cli import main
        assert main(["--system", "thetagpu", "--show"]) == 0
        out = capsys.readouterr().out
        assert "allreduce" in out
        assert "backend=nccl" in out

    def test_write_and_reload(self, tmp_path, capsys):
        from repro.core.tune_cli import main
        from repro.core.tuning_table import TuningTable
        path = tmp_path / "t.json"
        assert main(["--system", "mri", "--nodes", "2", "-o", str(path)]) == 0
        table = TuningTable.from_json(path.read_text())
        assert table.backend == "rccl"
        assert table.choose("allreduce", 4) == "mpi"

    def test_openmpi_personality(self, capsys):
        from repro.core.tune_cli import main
        assert main(["--system", "thetagpu", "--mpi", "openmpi",
                     "--show"]) == 0
        assert "openmpi" in capsys.readouterr().out

    def test_oneccl_extension_tunes(self, capsys):
        from repro.core.tune_cli import main
        assert main(["--system", "aurora", "--nodes", "2", "--show"]) == 0
        assert "backend=oneccl" in capsys.readouterr().out


class TestExperimentsCLI:
    def test_list(self, capsys):
        from repro.experiments.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table1" in out

    def test_run_quick_with_csv(self, tmp_path, capsys):
        from repro.experiments.cli import main
        path = tmp_path / "t1.csv"
        assert main(["run", "table1", "--scale", "quick",
                     "-o", str(path)]) == 0
        assert path.read_text().startswith("experiment")
