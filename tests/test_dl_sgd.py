"""Real-gradient data-parallel SGD: numerical equivalence across stacks."""

import numpy as np
import pytest

from repro.dl.sgd import MLP, make_dataset, train_data_parallel, train_reference
from repro.errors import RankFailedError
from repro.omb.stacks import make_stack
from repro.sim.engine import Engine


def _run(cluster, stack_name, nranks, steps=4, **kw):
    def body(ctx):
        stack = make_stack(ctx, stack_name, "nccl")
        losses, model = train_data_parallel(ctx, stack, steps=steps, **kw)
        return losses, model.w1.copy()

    return Engine(cluster, nranks=nranks).run(body)


class TestMLP:
    def test_deterministic_init(self):
        a, b = MLP(4, 8, 2, seed=7), MLP(4, 8, 2, seed=7)
        assert np.array_equal(a.w1, b.w1)

    def test_different_seeds_differ(self):
        assert not np.array_equal(MLP(4, 8, 2, 0).w1, MLP(4, 8, 2, 1).w1)

    def test_flatten_roundtrip(self):
        m = MLP(4, 8, 2)
        _loss, grads = m.loss_and_grads(*make_dataset(16, 4, 2))
        flat = MLP.flatten(grads)
        assert flat.size == m.param_count
        back = m.unflatten(flat)
        for g, b in zip(grads, back):
            assert np.array_equal(g, b)

    def test_gradients_match_numerical(self):
        """Analytic gradients vs central differences."""
        m = MLP(3, 5, 2, seed=3)
        x, y = make_dataset(8, 3, 2)
        _loss, grads = m.loss_and_grads(x, y)
        eps = 1e-6
        for idx in [(0, 0), (1, 2)]:
            m.w1[idx] += eps
            lp = m.loss_and_grads(x, y)[0]
            m.w1[idx] -= 2 * eps
            lm = m.loss_and_grads(x, y)[0]
            m.w1[idx] += eps
            numeric = (lp - lm) / (2 * eps)
            # loss_and_grads returns grads of the *sum-normalized* loss
            assert grads[0][idx] == pytest.approx(numeric, rel=1e-4)

    def test_training_reduces_loss(self):
        losses, _model = train_reference(steps=10)
        assert losses[-1] < losses[0]


class TestDataParallelEquivalence:
    @pytest.mark.parametrize("nranks", [2, 4, 8])
    def test_matches_reference(self, thetagpu1, nranks):
        out = _run(thetagpu1, "hybrid", nranks)
        ref_losses, ref_model = train_reference(steps=4, world=nranks)
        for losses, w1 in out:
            assert np.allclose(losses, ref_losses)
            assert np.allclose(w1, ref_model.w1)

    def test_all_ranks_agree_exactly(self, thetagpu1):
        out = _run(thetagpu1, "hybrid", 4)
        w1s = [w1 for _losses, w1 in out]
        for w in w1s[1:]:
            assert np.array_equal(w, w1s[0])  # bitwise: same allreduce result

    @pytest.mark.parametrize("stack", ["hybrid", "pure-xccl", "mpi",
                                       "openmpi", "ucc", "ccl"])
    def test_every_stack_learns_identically(self, thetagpu1, stack):
        out = _run(thetagpu1, stack, 4)
        ref_losses, _ = train_reference(steps=4, world=4)
        assert np.allclose(out[0][0], ref_losses)

    def test_indivisible_batch_rejected(self, thetagpu1):
        with pytest.raises(RankFailedError):
            _run(thetagpu1, "hybrid", 3, global_batch=64)

    def test_more_ranks_same_math(self, thetagpu1):
        """2-way and 8-way training reach the same model (same global
        batch, same averaging), demonstrating scale-invariance."""
        two = _run(thetagpu1, "hybrid", 2)[0][1]
        eight = _run(thetagpu1, "hybrid", 8)[0][1]
        assert np.allclose(two, eight)
