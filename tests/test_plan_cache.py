"""Plan-cache fast path: bit-identity, cache hits, pooling, lifecycle.

The fast path (``repro.fastpath`` + ``repro.core.plan``) may only change
how fast the simulator runs — never what it computes.  These tests pin
that contract: payloads and virtual clocks are bit-identical with the
cache on and off, for every collective on every backend, and the caches
actually get hit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import fastpath
from repro.core import runtime
from repro.core.plan import BufferPool, CollectivePlan, PlanCache
from repro.core.tuning_table import cached_table
from repro.mpi.coll.hierarchical import node_comms
from repro.mpi.ops import SUM
from repro.xccl.datatypes import support_table

#: (system, backend, single-node ranks) — one per CCL the paper ports.
#: Single-node runs are exactly reproducible (intra-node wires are
#: direction-tagged per pair), which is what makes bit-comparison valid.
STACKS = [
    ("thetagpu", None, 4),      # NCCL
    ("mri", None, 2),           # RCCL
    ("voyager", None, 4),       # HCCL
    ("thetagpu", "msccl", 4),   # MSCCL
]

SIZES = (37, 1024)  # odd count exercises uneven chunk geometry


def _collective_body(mpx):
    """Run every tunable collective twice per size; record payload
    bytes and the virtual clock after each call."""
    comm = mpx.COMM_WORLD
    ctx = comm.ctx
    p = comm.size
    log = []

    def snap(buf):
        log.append((buf.array.tobytes(), ctx.now))

    for count in SIZES:
        send = ctx.device.zeros(count * p, dtype=np.float32)
        recv = ctx.device.zeros(count * p, dtype=np.float32)
        send.array[:] = np.arange(count * p, dtype=np.float32) + comm.rank
        for _ in range(2):
            comm.Allreduce(send.view(0, count), recv.view(0, count), SUM)
            snap(recv)
            comm.Bcast(recv.view(0, count), root=0)
            snap(recv)
            comm.Reduce(send.view(0, count), recv.view(0, count), SUM, 0)
            snap(recv)
            comm.Allgather(send.view(0, count), recv.view(0, count * p))
            snap(recv)
            comm.Alltoall(send.view(0, count * p), recv.view(0, count * p))
            snap(recv)
            comm.Reduce_scatter_block(send.view(0, count * p),
                                      recv.view(0, count), SUM)
            snap(recv)
            comm.Gather(send.view(0, count), recv.view(0, count * p), root=0)
            snap(recv)
            comm.Scatter(send.view(0, count * p), recv.view(0, count),
                         root=0)
            snap(recv)
    return log


@pytest.mark.parametrize("system,backend,rpn", STACKS,
                         ids=[f"{s}-{b or 'native'}" for s, b, _ in STACKS])
def test_bit_identical_on_vs_off(system, backend, rpn):
    """Cache on vs off: identical payload bytes AND virtual times for
    every collective on every backend."""
    def run():
        return runtime.run(_collective_body, system=system, nodes=1,
                           ranks_per_node=rpn, backend=backend)

    prev = fastpath.set_plans_enabled(False)
    try:
        off = run()
        fastpath.set_plans_enabled(True)
        on = run()
    finally:
        fastpath.set_plans_enabled(prev)

    assert len(on) == len(off) == rpn
    for rank, (a, b) in enumerate(zip(off, on)):
        for i, ((data_a, t_a), (data_b, t_b)) in enumerate(zip(a, b)):
            assert data_a == data_b, f"rank {rank} payload {i} differs"
            assert t_a == t_b, f"rank {rank} clock after op {i} differs"


def test_plan_cache_hits_in_omb_style_loop():
    """Repeated identical calls replay compiled plans (hits > 0) and
    reuse pooled staging buffers."""
    def body(mpx):
        comm = mpx.COMM_WORLD
        ctx = comm.ctx
        s = ctx.device.zeros(256, dtype=np.float32)
        r = ctx.device.zeros(256, dtype=np.float32)
        for _ in range(10):
            comm.Allreduce(s, r, SUM)
        return True

    prev = fastpath.set_plans_enabled(True)
    try:
        fastpath.STATS.reset()
        runtime.run(body, system="thetagpu", nodes=1, ranks_per_node=4)
        stats = fastpath.STATS.snapshot()
    finally:
        fastpath.set_plans_enabled(prev)
    assert stats["hits"] > 0
    assert stats["compiled"] == stats["misses"]
    assert stats["hits"] > stats["misses"]
    assert stats["pool_reuses"] > 0


def test_persistent_collective_matches_blocking():
    """Allreduce_init + Start/wait == plain Allreduce, restartable."""
    def body(mpx):
        comm = mpx.COMM_WORLD
        ctx = comm.ctx
        s = ctx.device.zeros(64, dtype=np.float32)
        s.array[:] = comm.rank + 1
        r_plain = ctx.device.zeros(64, dtype=np.float32)
        r_pers = ctx.device.zeros(64, dtype=np.float32)
        comm.Allreduce(s, r_plain, SUM)
        req = comm.Allreduce_init(s, r_pers, SUM)
        assert not req.active
        for _ in range(3):
            req.Start().wait()
        assert req.coll == "allreduce"
        return bool(np.array_equal(r_plain.array, r_pers.array))

    assert all(runtime.run(body, system="thetagpu", nodes=1,
                           ranks_per_node=4))


def test_persistent_all_variants_run():
    """Every *_init variant starts, completes, and restarts."""
    def body(mpx):
        comm = mpx.COMM_WORLD
        ctx = comm.ctx
        p = comm.size
        s = ctx.device.zeros(8 * p, dtype=np.float32)
        r = ctx.device.zeros(8 * p, dtype=np.float32)
        reqs = [
            comm.Allreduce_init(s.view(0, 8), r.view(0, 8), SUM),
            comm.Bcast_init(r.view(0, 8), root=0),
            comm.Reduce_init(s.view(0, 8), r.view(0, 8), SUM, 0),
            comm.Allgather_init(s.view(0, 8), r),
            comm.Alltoall_init(s, r),
            comm.Reduce_scatter_block_init(s, r.view(0, 8), SUM),
            comm.Barrier_init(),
        ]
        for req in reqs:
            req.Start().wait()
            req.Start().wait()  # restart after completion
            assert not req.active
        return True

    assert all(runtime.run(body, system="thetagpu", nodes=1,
                           ranks_per_node=4))


def test_comm_free_releases_caches():
    """Comm_free drops compiled plans, tuning bindings, and cached
    hierarchical sub-communicators."""
    def body(mpx):
        comm = mpx.COMM_WORLD
        sub = mpx.attach(comm.Split(color=0, key=comm.rank))
        ctx = comm.ctx
        s = ctx.device.zeros(64, dtype=np.float32)
        r = ctx.device.zeros(64, dtype=np.float32)
        sub.Allreduce(s, r, SUM)
        local, leaders = node_comms(sub)
        assert sub._hier_comms[0] is local
        had_plans = sub.ctx_id in getattr(sub.coll, "_plans", {})
        sub.Free()
        assert sub.ctx_id not in getattr(sub.coll, "_plans", {})
        assert sub.ctx_id not in getattr(sub.coll, "_tables", {})
        assert not hasattr(sub, "_hier_comms")
        sub.Free()  # idempotent
        return had_plans

    prev = fastpath.set_plans_enabled(True)
    try:
        assert all(runtime.run(body, system="thetagpu", nodes=1,
                               ranks_per_node=4))
    finally:
        fastpath.set_plans_enabled(prev)


def test_support_table_identity():
    """Capability lookups are memoized down to the same object,
    case-insensitively."""
    assert support_table("nccl") is support_table("NCCL")
    assert support_table("rccl") is support_table("nccl")  # same family set
    assert support_table("hccl") is not None
    assert support_table("nosuch") is None


def test_cached_table_identity():
    """Equal (shape, ccl, config) inputs return the identical table."""
    from repro.hw.systems import make_system
    from repro.mpi.config import mvapich_gpu
    from repro.perfmodel.params import ccl_params
    from repro.perfmodel.shape import shape_of

    cluster = make_system("thetagpu", 2)
    shape = shape_of(cluster, tuple(range(16)), 8)
    ccl = ccl_params("nccl")
    cfg = mvapich_gpu()
    assert cached_table(shape, ccl, cfg) is cached_table(shape, ccl, cfg)


def test_buffer_pool_reuse_and_cap():
    pool = BufferPool()
    key = (True, "<f4", 64)
    assert pool.acquire(key) is None
    buf = np.zeros(64, dtype=np.float32)
    pool.release(key, buf)
    assert pool.acquire(key) is buf
    assert pool.acquire(key) is None  # drained
    for _ in range(64):
        pool.release(key, np.zeros(64, dtype=np.float32))
    from repro.core.plan import POOL_CAP_PER_KEY
    assert len(pool) <= POOL_CAP_PER_KEY


def test_plan_cache_counts():
    cache = PlanCache()
    key = ("hybrid", "allreduce", 1024, "MPI_FLOAT", "MPI_SUM", True)
    assert cache.lookup(key) is None
    plan = cache.store(key, CollectivePlan(key=key, decision=None))
    assert cache.lookup(key) is plan
    assert cache.hits == 1 and cache.misses == 1
    cache.clear()
    assert len(cache) == 0


def test_toggle_restores():
    prev = fastpath.set_plans_enabled(False)
    try:
        assert not fastpath.plans_enabled()
        fastpath.set_plans_enabled(True)
        assert fastpath.plans_enabled()
    finally:
        fastpath.set_plans_enabled(prev)
