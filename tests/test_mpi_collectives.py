"""Correctness of every MPI collective algorithm, all rank counts.

Each algorithm is pinned via the dispatcher's ``force`` knob and
validated against a numpy-computed reference, for power-of-two and
awkward rank counts, small and large payloads.
"""

import numpy as np
import pytest

from repro.mpi import MAX, PROD, SUM, Communicator
from repro.mpi.coll import MPICollDispatcher
from repro.mpi.communicator import IN_PLACE
from repro.mpi.ops import user_op

RANK_COUNTS = [2, 3, 4, 7, 8]


def comm_with(ctx, force=None):
    comm = Communicator.world(ctx)
    comm.coll = MPICollDispatcher(force=force)
    return comm


def _values(p, n, rank):
    return (np.arange(n, dtype=np.float64) % 13) + rank * 100.0


class TestBcast:
    @pytest.mark.parametrize("algo", ["binomial", "scatter_ring_allgather"])
    @pytest.mark.parametrize("p", RANK_COUNTS)
    def test_correct(self, thetagpu1, spmd, algo, p):
        n = 1000

        def body(ctx):
            comm = comm_with(ctx, algo)
            buf = ctx.device.zeros(n, dtype=np.float64)
            root = p - 1
            if ctx.rank == root:
                buf.array[:] = _values(p, n, root)
            comm.Bcast(buf, root=root)
            return np.array_equal(buf.array, _values(p, n, root))

        assert all(spmd(thetagpu1, body, nranks=p))

    def test_small_count_degenerate(self, thetagpu1, spmd):
        def body(ctx):
            comm = comm_with(ctx, "scatter_ring_allgather")
            buf = ctx.device.zeros(3)  # count < p
            if ctx.rank == 0:
                buf.array[:] = [1, 2, 3]
            comm.Bcast(buf, root=0)
            return list(buf.array)

        assert spmd(thetagpu1, body, nranks=8) == [[1, 2, 3]] * 8


class TestReduce:
    @pytest.mark.parametrize("algo", ["binomial", "linear",
                                      "reduce_scatter_gather"])
    @pytest.mark.parametrize("p", RANK_COUNTS)
    def test_sum(self, thetagpu1, spmd, algo, p):
        n = 600

        def body(ctx):
            comm = comm_with(ctx, algo)
            send = ctx.device.zeros(n, dtype=np.float64)
            send.array[:] = _values(p, n, ctx.rank)
            recv = ctx.device.zeros(n, dtype=np.float64)
            comm.Reduce(send, recv, SUM, root=0)
            if ctx.rank != 0:
                return True
            expect = sum(_values(p, n, r) for r in range(p))
            return np.allclose(recv.array, expect)

        assert all(spmd(thetagpu1, body, nranks=p))

    def test_max_op(self, thetagpu1, spmd):
        def body(ctx):
            comm = comm_with(ctx, "binomial")
            send = ctx.device.zeros(8)
            send.fill(float(ctx.rank))
            recv = ctx.device.zeros(8)
            comm.Reduce(send, recv, MAX, root=2)
            return recv.array[0] if ctx.rank == 2 else None

        assert spmd(thetagpu1, body, nranks=5)[2] == 4.0

    def test_noncommutative_user_op_rank_ordered(self, thetagpu1, spmd):
        # f(a, b) = a*2 + b is associative but NOT commutative: the
        # result depends on operand order, which must be rank order
        op = user_op(lambda a, b: a * 2 + b, commutative=False)

        def body(ctx):
            comm = comm_with(ctx)
            send = np.full(4, float(ctx.rank + 1))
            recv = np.zeros(4)
            comm.Reduce(send, recv, op, root=0)
            return recv[0] if ctx.rank == 0 else None

        # left-assoc rank order: ((2*1+2)=4, 2*4+3=11, 2*11+4=26)
        assert spmd(thetagpu1, body, nranks=4)[0] == 26.0


class TestAllreduce:
    @pytest.mark.parametrize("algo", ["recursive_doubling", "ring"])
    @pytest.mark.parametrize("p", RANK_COUNTS)
    def test_sum(self, thetagpu1, spmd, algo, p):
        n = 800

        def body(ctx):
            comm = comm_with(ctx, algo)
            send = ctx.device.zeros(n, dtype=np.float64)
            send.array[:] = _values(p, n, ctx.rank)
            recv = ctx.device.zeros(n, dtype=np.float64)
            comm.Allreduce(send, recv, SUM)
            expect = sum(_values(p, n, r) for r in range(p))
            return np.allclose(recv.array, expect)

        assert all(spmd(thetagpu1, body, nranks=p))

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_rabenseifner_pof2(self, thetagpu1, spmd, p):
        n = 1024

        def body(ctx):
            comm = comm_with(ctx, "rabenseifner")
            send = ctx.device.zeros(n, dtype=np.float64)
            send.array[:] = _values(p, n, ctx.rank)
            recv = ctx.device.zeros(n, dtype=np.float64)
            comm.Allreduce(send, recv, SUM)
            expect = sum(_values(p, n, r) for r in range(p))
            return np.allclose(recv.array, expect)

        assert all(spmd(thetagpu1, body, nranks=p))

    def test_in_place(self, thetagpu1, spmd):
        def body(ctx):
            comm = comm_with(ctx)
            buf = ctx.device.zeros(16)
            buf.fill(float(ctx.rank + 1))
            comm.Allreduce(IN_PLACE, buf, SUM)
            return buf.array[0]

        assert spmd(thetagpu1, body, nranks=4) == [10.0] * 4

    def test_prod(self, thetagpu1, spmd):
        def body(ctx):
            comm = comm_with(ctx)
            send = ctx.device.zeros(4)
            send.fill(2.0)
            recv = ctx.device.zeros(4)
            comm.Allreduce(send, recv, PROD)
            return recv.array[0]

        assert spmd(thetagpu1, body, nranks=3) == [8.0] * 3

    def test_count_1_edge(self, thetagpu1, spmd):
        def body(ctx):
            comm = comm_with(ctx, "ring")
            send = ctx.device.zeros(1)
            send.fill(1.0)
            recv = ctx.device.zeros(1)
            comm.Allreduce(send, recv, SUM)
            return recv.array[0]

        assert spmd(thetagpu1, body, nranks=5) == [5.0] * 5


class TestAllgather:
    @pytest.mark.parametrize("algo", ["ring", "bruck"])
    @pytest.mark.parametrize("p", RANK_COUNTS)
    def test_correct(self, thetagpu1, spmd, algo, p):
        n = 50

        def body(ctx):
            comm = comm_with(ctx, algo)
            send = ctx.device.zeros(n, dtype=np.float64)
            send.array[:] = _values(p, n, ctx.rank)
            recv = ctx.device.zeros(n * p, dtype=np.float64)
            comm.Allgather(send, recv)
            expect = np.concatenate([_values(p, n, r) for r in range(p)])
            return np.array_equal(recv.array, expect)

        assert all(spmd(thetagpu1, body, nranks=p))

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_recursive_doubling_pof2(self, thetagpu1, spmd, p):
        def body(ctx):
            comm = comm_with(ctx, "recursive_doubling")
            send = ctx.device.zeros(16)
            send.fill(float(ctx.rank))
            recv = ctx.device.zeros(16 * p)
            comm.Allgather(send, recv)
            return np.array_equal(recv.array,
                                  np.repeat(np.arange(p, dtype=float), 16))

        assert all(spmd(thetagpu1, body, nranks=p))

    def test_allgatherv(self, thetagpu1, spmd):
        def body(ctx):
            comm = comm_with(ctx)
            p = comm.size
            counts = [r + 1 for r in range(p)]
            mine = counts[ctx.rank]
            send = ctx.device.zeros(mine)
            send.fill(float(ctx.rank))
            recv = ctx.device.zeros(sum(counts))
            comm.Allgatherv(send, recv, counts)
            expect = np.concatenate(
                [np.full(c, float(r)) for r, c in enumerate(counts)])
            return np.array_equal(recv.array, expect)

        assert all(spmd(thetagpu1, body, nranks=5))


class TestAlltoall:
    @pytest.mark.parametrize("algo", ["scattered", "pairwise", "bruck"])
    @pytest.mark.parametrize("p", RANK_COUNTS)
    def test_correct(self, thetagpu1, spmd, algo, p):
        n = 16

        def body(ctx):
            comm = comm_with(ctx, algo)
            send = ctx.device.zeros(n * p, dtype=np.int64)
            send.array[:] = np.repeat(ctx.rank * 1000 + np.arange(p), n)
            recv = ctx.device.zeros(n * p, dtype=np.int64)
            comm.Alltoall(send, recv)
            expect = np.repeat(np.arange(p) * 1000 + ctx.rank, n)
            return np.array_equal(recv.array, expect)

        assert all(spmd(thetagpu1, body, nranks=p))

    def test_alltoallv_ragged(self, thetagpu1, spmd):
        def body(ctx):
            comm = comm_with(ctx)
            p = comm.size
            scounts = [(ctx.rank + d) % 3 + 1 for d in range(p)]
            rcounts = [(s + ctx.rank) % 3 + 1 for s in range(p)]
            send = np.concatenate(
                [np.full(c, ctx.rank * 10 + d, dtype=np.int32)
                 for d, c in enumerate(scounts)])
            recv = np.zeros(sum(rcounts), dtype=np.int32)
            comm.Alltoallv(send, scounts, recv, rcounts)
            off = 0
            for s, c in enumerate(rcounts):
                if not np.all(recv[off:off + c] == s * 10 + ctx.rank):
                    return False
                off += c
            return True

        assert all(spmd(thetagpu1, body, nranks=4))

    def test_alltoallv_zero_counts(self, thetagpu1, spmd):
        def body(ctx):
            comm = comm_with(ctx)
            p = comm.size
            scounts = [1 if d != ctx.rank else 0 for d in range(p)]
            rcounts = [1 if s != ctx.rank else 0 for s in range(p)]
            send = np.full(sum(scounts), float(ctx.rank))
            recv = np.zeros(sum(rcounts))
            comm.Alltoallv(send, scounts, recv, rcounts)
            expect = [float(s) for s in range(p) if s != ctx.rank]
            return list(recv) == expect

        assert all(spmd(thetagpu1, body, nranks=4))


class TestGatherScatter:
    @pytest.mark.parametrize("algo", ["linear", "binomial"])
    @pytest.mark.parametrize("p", RANK_COUNTS)
    @pytest.mark.parametrize("root", [0, 1])
    def test_gather(self, thetagpu1, spmd, algo, p, root):
        if root >= p:
            pytest.skip("root outside comm")

        def body(ctx):
            comm = comm_with(ctx, algo)
            send = ctx.device.zeros(8, dtype=np.int64)
            send.array[:] = ctx.rank
            recv = ctx.device.zeros(8 * p, dtype=np.int64)
            comm.Gather(send, recv, root=root)
            if ctx.rank != root:
                return True
            return np.array_equal(recv.array,
                                  np.repeat(np.arange(p), 8))

        assert all(spmd(thetagpu1, body, nranks=p))

    @pytest.mark.parametrize("algo", ["linear", "binomial"])
    @pytest.mark.parametrize("p", RANK_COUNTS)
    @pytest.mark.parametrize("root", [0, 1])
    def test_scatter(self, thetagpu1, spmd, algo, p, root):
        if root >= p:
            pytest.skip("root outside comm")

        def body(ctx):
            comm = comm_with(ctx, algo)
            send = ctx.device.zeros(8 * p, dtype=np.int64)
            if ctx.rank == root:
                send.array[:] = np.repeat(np.arange(p) + 50, 8)
            recv = ctx.device.zeros(8, dtype=np.int64)
            comm.Scatter(send, recv, root=root)
            return np.all(recv.array == ctx.rank + 50)

        assert all(spmd(thetagpu1, body, nranks=p))

    def test_gatherv_scatterv(self, thetagpu1, spmd):
        def body(ctx):
            comm = comm_with(ctx)
            p = comm.size
            counts = [r + 1 for r in range(p)]
            send = np.full(counts[ctx.rank], float(ctx.rank))
            recv = np.zeros(sum(counts))
            comm.Gatherv(send, recv, counts, root=0)
            ok = True
            if ctx.rank == 0:
                expect = np.concatenate(
                    [np.full(c, float(r)) for r, c in enumerate(counts)])
                ok = np.array_equal(recv, expect)
            # scatterv it back
            out = np.zeros(counts[ctx.rank])
            comm.Scatterv(recv, counts, out, root=0)
            return ok and np.all(out == float(ctx.rank))

        assert all(spmd(thetagpu1, body, nranks=4))


class TestReduceScatterScanBarrier:
    @pytest.mark.parametrize("algo,p", [("recursive_halving", 4),
                                        ("recursive_halving", 8),
                                        ("pairwise", 3),
                                        ("pairwise", 5),
                                        ("pairwise", 8)])
    def test_reduce_scatter_block(self, thetagpu1, spmd, algo, p):
        n = 32

        def body(ctx):
            comm = comm_with(ctx, algo)
            send = ctx.device.zeros(n * p, dtype=np.float64)
            send.array[:] = np.tile(_values(p, n, ctx.rank), p) + \
                np.repeat(np.arange(p), n)
            recv = ctx.device.zeros(n, dtype=np.float64)
            comm.Reduce_scatter_block(send, recv, SUM)
            expect = sum(_values(p, n, r) + ctx.rank for r in range(p))
            return np.allclose(recv.array, expect)

        assert all(spmd(thetagpu1, body, nranks=p))

    @pytest.mark.parametrize("p", [1, 2, 5, 8])
    def test_scan(self, thetagpu1, spmd, p):
        def body(ctx):
            comm = comm_with(ctx)
            send = np.full(6, float(ctx.rank + 1))
            recv = np.zeros(6)
            comm.Scan(send, recv, SUM)
            return recv[0]

        out = spmd(thetagpu1, body, nranks=p)
        assert out == [sum(range(1, r + 2)) for r in range(p)]

    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_exscan(self, thetagpu1, spmd, p):
        def body(ctx):
            comm = comm_with(ctx)
            send = np.full(4, float(ctx.rank + 1))
            recv = np.full(4, -1.0)
            comm.Exscan(send, recv, SUM)
            return recv[0]

        out = spmd(thetagpu1, body, nranks=p)
        assert out[0] == -1.0  # rank 0 untouched
        assert out[1:] == [sum(range(1, r + 1)) for r in range(1, p)]

    @pytest.mark.parametrize("p", [1, 2, 3, 8])
    def test_barrier_synchronizes_clocks(self, thetagpu1, spmd, p):
        def body(ctx):
            ctx.clock.advance(float(ctx.rank * 100))
            comm = comm_with(ctx)
            comm.Barrier()
            return ctx.now

        out = spmd(thetagpu1, body, nranks=p)
        slowest = (p - 1) * 100
        assert all(t >= slowest for t in out)
