"""Stream/event virtual-time semantics."""

import pytest

from repro.errors import StreamError
from repro.hw.stream import Event
from repro.hw.systems import thetagpu


@pytest.fixture
def stream():
    return thetagpu(1).devices[0].create_stream("t")


class TestStream:
    def test_in_order_execution(self, stream):
        end1 = stream.enqueue(10.0, host_time_us=0.0)
        end2 = stream.enqueue(5.0, host_time_us=0.0)
        assert end1 == 10.0
        assert end2 == 15.0  # waits for the first op

    def test_idle_gap(self, stream):
        stream.enqueue(10.0, host_time_us=0.0)
        end = stream.enqueue(5.0, host_time_us=100.0)  # host got ahead
        assert end == 105.0

    def test_synchronize_blocks_host(self, stream):
        stream.enqueue(50.0, host_time_us=0.0)
        assert stream.synchronize(host_time_us=10.0) == 50.0
        assert stream.synchronize(host_time_us=80.0) == 80.0

    def test_negative_duration_rejected(self, stream):
        with pytest.raises(StreamError):
            stream.enqueue(-1.0)

    def test_history(self, stream):
        stream.enqueue(1.0, label="a")
        stream.enqueue(2.0, label="b")
        labels = [h[0] for h in stream.history]
        assert labels == ["a", "b"]

    def test_reset(self, stream):
        stream.enqueue(5.0)
        stream.reset()
        assert stream.ready_time == 0.0
        assert stream.history == []


class TestEvent:
    def test_record_and_wait(self, stream):
        stream.enqueue(10.0)
        ev = stream.record(Event("e"))
        assert ev.recorded
        assert ev.timestamp == 10.0

    def test_wait_unrecorded_rejected(self, stream):
        with pytest.raises(StreamError):
            stream.wait_event(Event("never"))

    def test_query_unrecorded_rejected(self):
        with pytest.raises(StreamError):
            Event("x").timestamp

    def test_cross_stream_ordering(self):
        dev = thetagpu(1).devices[0]
        s1, s2 = dev.create_stream(), dev.create_stream()
        s1.enqueue(20.0)
        ev = s1.record(Event())
        s2.wait_event(ev)
        end = s2.enqueue(1.0, host_time_us=0.0)
        assert end == 21.0  # s2 work ordered after s1's event
