"""Size parsing/formatting and sweeps."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.util.sizes import (
    DEFAULT_OMB_SIZES,
    format_size,
    parse_size,
    power_of_two_sizes,
)


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_plain_digit_string(self):
        assert parse_size("512") == 512

    @pytest.mark.parametrize("text,expected", [
        ("4K", 4096), ("4k", 4096), ("16KB", 16384), ("1M", 1 << 20),
        ("4M", 4 << 20), ("2G", 2 << 30), ("1KiB", 1024), ("8B", 8),
    ])
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    def test_fractional(self):
        assert parse_size("0.5K") == 512

    def test_whitespace_tolerated(self):
        assert parse_size("  4M ") == 4 << 20

    @pytest.mark.parametrize("bad", ["", "K", "4X", "4 Q", "--4", None, 1.5])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_size(bad)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(-4)

    def test_bool_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(True)


class TestFormatSize:
    @pytest.mark.parametrize("n,expected", [
        (4, "4"), (1024, "1K"), (4096, "4K"), (1 << 20, "1M"),
        (4 << 20, "4M"), (1 << 30, "1G"), (1536, "1536"),
    ])
    def test_round_values(self, n, expected):
        assert format_size(n) == expected

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            format_size(-1)

    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_roundtrip_parses_back(self, n):
        assert parse_size(format_size(n)) == n


class TestPowerOfTwoSizes:
    def test_default_sweep_bounds(self):
        assert DEFAULT_OMB_SIZES[0] == 4
        assert DEFAULT_OMB_SIZES[-1] == 4 << 20

    def test_all_powers_of_two(self):
        for s in DEFAULT_OMB_SIZES:
            assert s & (s - 1) == 0

    def test_contiguous_doubling(self):
        for a, b in zip(DEFAULT_OMB_SIZES, DEFAULT_OMB_SIZES[1:]):
            assert b == 2 * a

    def test_min_rounds_up(self):
        assert power_of_two_sizes(5, 64) == [8, 16, 32, 64]

    def test_single_point(self):
        assert power_of_two_sizes(16, 16) == [16]

    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigError):
            power_of_two_sizes(1024, 4)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            power_of_two_sizes(0, 4)
