"""Cross-layer integration scenarios (the workflows a user runs)."""

import numpy as np
import pytest

from repro.core import run
from repro.mpi import DOUBLE, FLOAT, SUM, vector
from repro.mpi.cart import CartComm
from repro.mpi.rma import Win


class TestMultiSystemPortability:
    @pytest.mark.parametrize("system,backend", [
        ("thetagpu", "nccl"), ("mri", "rccl"),
        ("voyager", "hccl"), ("aurora", "oneccl"),
    ])
    def test_same_program_every_vendor(self, system, backend):
        """The paper's core promise across all four ecosystems."""

        def body(mpx):
            comm = mpx.COMM_WORLD
            buf = mpx.device_array(4096, fill=float(mpx.rank + 1))
            out = mpx.device_array(4096)
            comm.Allreduce(buf, out, SUM)
            big = mpx.device_array(1 << 19, fill=1.0)
            comm.Bcast(big, root=0)
            return (mpx.layer.backend_name,
                    float(out.array[0]) == sum(r + 1 for r in range(mpx.size)))

        out = run(body, system=system, nodes=2)
        assert all(ok for _b, ok in out)
        assert out[0][0] == backend

    def test_inter_node_placement(self):
        """ppn=1 spreads ranks across nodes; hybrid still correct."""

        def body(mpx):
            buf = mpx.device_array(1 << 18, fill=2.0)
            out = mpx.device_array(1 << 18)
            mpx.COMM_WORLD.Allreduce(buf, out, SUM)
            return float(out.array[0])

        out = run(body, system="thetagpu", nodes=4, nranks=4,
                  ranks_per_node=1)
        assert out == [8.0] * 4


class TestMixedWorkflow:
    def test_split_rma_collectives_interleave(self, thetagpu1):
        """Sub-communicators, one-sided windows, and hybrid collectives
        in one program — context isolation must hold throughout."""

        def body(mpx):
            comm = mpx.COMM_WORLD
            sub = mpx.attach(comm.Split(color=mpx.rank % 2, key=mpx.rank))
            win = Win.allocate(comm, 4, DOUBLE)
            win.fence()
            contrib = mpx.device_array(4, dtype=np.float64,
                                       fill=float(mpx.rank))
            win.accumulate(contrib, target_rank=0, op=SUM)
            # collective on the sub-communicator while RMA is open
            s = mpx.device_array(1 << 16, fill=1.0)
            r = mpx.device_array(1 << 16)
            sub.Allreduce(s, r, SUM)
            win.fence()
            return (float(r.array[0]),
                    float(win.local.array[0]) if mpx.rank == 0 else None)

        out = run(body, system=thetagpu1)
        assert all(v[0] == 4.0 for v in out)      # 4 ranks per color
        assert out[0][1] == sum(range(8))          # all accumulations landed

    def test_derived_types_with_hybrid_runtime(self, thetagpu1):
        """Derived-type p2p rides the MPI path while collectives route
        through the CCL — both in one exchange."""

        def body(mpx):
            comm = mpx.COMM_WORLD
            col = vector(8, 1, 8, FLOAT)
            m = mpx.device_array(64)
            if mpx.rank == 0:
                m.array[:] = np.arange(64)
                comm.Send(m, 1, count=1, datatype=col)
            elif mpx.rank == 1:
                comm.Recv(m, source=0, count=1, datatype=col)
            big = mpx.device_array(1 << 18, fill=1.0)
            out = mpx.device_array(1 << 18)
            comm.Allreduce(big, out, SUM)
            column_ok = True
            if mpx.rank == 1:
                column_ok = bool(np.array_equal(
                    m.array.reshape(8, 8)[:, 0], np.arange(0, 64, 8)))
            return (column_ok, mpx.route_stats.xccl_calls >= 1)

        out = run(body, system=thetagpu1)
        assert all(a and b for a, b in out)

    def test_cart_grid_with_hybrid(self, thetagpu1):
        def body(mpx):
            comm = mpx.COMM_WORLD
            grid = CartComm(comm, (2, 4), periods=[True, True])
            _left, right = grid.shift(1, 1)
            send = mpx.device_array(16, fill=float(mpx.rank))
            recv = mpx.device_array(16)
            left, _r = grid.shift(1, 1)
            comm.Sendrecv(send, right, recv, left)
            return recv.array[0]

        out = run(body, system=thetagpu1)
        # each rank receives from its left neighbour within its row,
        # wrapping periodically (rank 0's left neighbour is rank 3)
        assert out[1] == 0.0 and out[0] == 3.0

    def test_latency_monotone_across_stacks(self, thetagpu1):
        """Every stack's allreduce latency grows with message size."""
        from repro.omb.collective import osu_allreduce
        from repro.omb.harness import OMBConfig
        from repro.omb.stacks import make_stack
        from repro.sim.engine import Engine

        cfg = OMBConfig(sizes=(256, 65536, 1 << 20), warmup=1, iterations=2)
        for stack in ("hybrid", "mpi", "ccl", "ucc"):
            def body(ctx, stack=stack):
                return osu_allreduce(ctx, make_stack(ctx, stack), cfg)

            stats = Engine(thetagpu1, nranks=4).run(body)[0]
            lats = [stats[s].avg_us for s in cfg.sizes]
            assert lats[0] < lats[-1], stack


class TestTraceIntegration:
    def test_traced_hybrid_run_exports(self, thetagpu1, tmp_path):
        from repro.sim.timeline import save_chrome_trace

        def body(mpx):
            buf = mpx.device_array(1 << 16, fill=1.0)
            out = mpx.device_array(1 << 16)
            mpx.COMM_WORLD.Allreduce(buf, out, SUM)
            small = mpx.device_array(16, fill=1.0)
            mpx.COMM_WORLD.Allreduce(small, mpx.device_array(16), SUM)
            return mpx.ctx.trace

        traces = run(body, system=thetagpu1, trace=True)
        path = tmp_path / "run.json"
        save_chrome_trace(traces, str(path))
        assert path.stat().st_size > 100
        # the hybrid run must show both p2p (MPI path) and CCL events
        kinds = {e.kind for t in traces for e in t.events}
        assert "send" in kinds or "recv" in kinds
