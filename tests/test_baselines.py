"""Baselines: Open MPI + UCX, UCC, pure-CCL harness."""

import numpy as np

from repro.baselines.openmpi import openmpi_communicator
from repro.baselines.pure_ccl import PureCCLHarness
from repro.baselines.ucc import UCC_TABLE, UCCBackend, ucc_communicator
from repro.mpi import SUM
from repro.xccl.registry import get_backend


class TestOpenMPI:
    def test_personality(self, thetagpu1, spmd):
        def body(ctx):
            return openmpi_communicator(ctx).config.name

        assert spmd(thetagpu1, body, nranks=2)[0] == "openmpi+ucx"

    def test_collectives_work(self, thetagpu1, spmd):
        def body(ctx):
            comm = openmpi_communicator(ctx)
            s = ctx.device.zeros(64)
            s.fill(1.0)
            r = ctx.device.zeros(64)
            comm.Allreduce(s, r, SUM)
            return r.array[0]

        assert spmd(thetagpu1, body, nranks=4) == [4.0] * 4

    def test_slower_small_messages_than_mvapich(self, thetagpu1, spmd):
        from repro.mpi import Communicator

        def body(ctx):
            s = ctx.device.zeros(16)
            r = ctx.device.zeros(16)
            comm_a = Communicator.world(ctx)
            comm_a.Barrier()
            t0 = ctx.now
            comm_a.Allreduce(s, r, SUM)
            t_mvapich = ctx.now - t0
            comm_b = openmpi_communicator(ctx)
            comm_b.Barrier()
            t1 = ctx.now
            comm_b.Allreduce(s, r, SUM)
            return t_mvapich, ctx.now - t1

        a, b = spmd(thetagpu1, body, nranks=4)[0]
        assert b > a


class TestUCC:
    def test_static_table_routes(self):
        assert UCC_TABLE.choose("allreduce", 64) == "mpi"
        assert UCC_TABLE.choose("allreduce", 65536) == "xccl"
        assert UCC_TABLE.choose("alltoall", 64) == "xccl"   # always NCCL tl
        assert UCC_TABLE.choose("gather", 1 << 20) == "mpi"

    def test_backend_heavier_than_nccl(self):
        nccl = get_backend("nccl").params
        assert UCCBackend.params.launch_us > nccl.launch_us
        assert UCCBackend.params.bw_eff_intra < nccl.bw_eff_intra

    def test_correctness(self, thetagpu1, spmd):
        def body(ctx):
            comm = ucc_communicator(ctx)
            s = ctx.device.zeros(1 << 18)
            s.fill(2.0)
            r = ctx.device.zeros(1 << 18)
            comm.Allreduce(s, r, SUM)
            return r.array[0]

        assert spmd(thetagpu1, body, nranks=4) == [8.0] * 4

    def test_large_allreduce_takes_ccl_route(self, thetagpu1, spmd):
        def body(ctx):
            comm = ucc_communicator(ctx)
            s = ctx.device.zeros(1 << 18)
            comm.Allreduce(s, ctx.device.zeros(1 << 18), SUM)
            return comm.coll.stats.xccl_calls

        assert spmd(thetagpu1, body, nranks=4)[0] == 1


class TestPureCCL:
    def test_all_collectives(self, thetagpu1, spmd):
        def body(ctx):
            h = PureCCLHarness(ctx, "nccl")
            p = h.size
            n = 32
            s = ctx.device.zeros(n)
            s.fill(1.0)
            r = ctx.device.zeros(n)
            h.allreduce(s, r, n)
            ok = r.array[0] == p
            rg = ctx.device.zeros(n * p)
            h.allgather(s, rg, n)
            ok &= rg.array.sum() == n * p
            h.bcast(s, n, root=0)
            h.reduce(s, r, n, root=0)
            sa = ctx.device.zeros(n * p)
            sa.array[:] = np.repeat(ctx.rank * 10.0 + np.arange(p), n)
            ra = ctx.device.zeros(n * p)
            h.alltoall(sa, ra, n)
            ok &= bool(np.array_equal(
                ra.array, np.repeat(np.arange(p) * 10.0 + ctx.rank, n)))
            return bool(ok)

        assert all(spmd(thetagpu1, body, nranks=4))

    def test_sync_aligns_clocks(self, thetagpu1, spmd):
        def body(ctx):
            ctx.clock.advance(float(ctx.rank) * 50)
            h = PureCCLHarness(ctx, "nccl")
            h.sync()
            return ctx.now

        times = spmd(thetagpu1, body, nranks=4)
        assert len(set(times)) == 1

    def test_msccl_harness(self, thetagpu1, spmd):
        def body(ctx):
            h = PureCCLHarness(ctx, "msccl")
            s = ctx.device.zeros(16)
            s.fill(1.0)
            r = ctx.device.zeros(16)
            h.allreduce(s, r, 16)
            return r.array[0]

        assert spmd(thetagpu1, body, nranks=2) == [2.0, 2.0]
