"""MPIX_* environment configuration."""

import pytest

from repro.config import EnvDefaults, apply_env, from_env
from repro.core import DispatchMode, run
from repro.errors import ConfigError
from repro.mpi import SUM
from repro.mpi.config import mvapich_gpu


class TestFromEnv:
    def test_empty(self):
        assert from_env({}) == EnvDefaults()

    def test_backend_and_mode(self):
        d = from_env({"MPIX_BACKEND": "msccl", "MPIX_MODE": "pure_xccl"})
        assert d.backend == "msccl"
        assert d.mode == "pure_xccl"

    def test_mode_case_insensitive(self):
        assert from_env({"MPIX_MODE": "Pure_MPI"}).mode == "pure_mpi"

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            from_env({"MPIX_MODE": "turbo"})

    def test_eager_sizes_parsed(self):
        d = from_env({"MPIX_EAGER_INTRA": "16K", "MPIX_EAGER_INTER": "32K"})
        assert d.eager_intra == 16384
        assert d.eager_inter == 32768

    def test_missing_tuning_file(self):
        with pytest.raises(ConfigError):
            from_env({"MPIX_TUNING_FILE": "/nonexistent/table.json"})

    def test_empty_values_ignored(self):
        assert from_env({"MPIX_BACKEND": "", "MPIX_MODE": ""}) == EnvDefaults()


class TestApplyEnv:
    def test_explicit_args_win(self):
        backend, mode, table, cfg = apply_env(
            "nccl", "pure_mpi", None, mvapich_gpu(),
            environ={"MPIX_BACKEND": "msccl", "MPIX_MODE": "hybrid"})
        assert backend == "nccl"
        assert mode == "pure_mpi"

    def test_env_fills_gaps(self):
        backend, mode, _t, _c = apply_env(
            None, None, None, mvapich_gpu(),
            environ={"MPIX_BACKEND": "msccl", "MPIX_MODE": "pure_xccl"})
        assert backend == "msccl"
        assert mode == "pure_xccl"

    def test_default_mode_hybrid(self):
        _b, mode, _t, _c = apply_env(None, None, None, mvapich_gpu(),
                                     environ={})
        assert mode == "hybrid"

    def test_eager_overrides_config(self):
        _b, _m, _t, cfg = apply_env(None, None, None, mvapich_gpu(),
                                    environ={"MPIX_EAGER_INTRA": "64K"})
        assert cfg.eager_threshold_intra == 65536

    def test_tuning_file_loaded(self, tmp_path):
        from repro.core.tune_cli import main
        path = tmp_path / "table.json"
        main(["--system", "thetagpu", "-o", str(path)])
        _b, _m, table, _c = apply_env(None, None, None, mvapich_gpu(),
                                      environ={"MPIX_TUNING_FILE": str(path)})
        assert table is not None
        assert table.backend == "nccl"


class TestRunHonorsEnv:
    def test_backend_from_env(self, monkeypatch):
        monkeypatch.setenv("MPIX_BACKEND", "msccl")
        out = run(lambda mpx: mpx.layer.backend_name,
                  system="thetagpu", nranks=2)
        assert out == ["msccl", "msccl"]

    def test_mode_from_env(self, monkeypatch):
        monkeypatch.setenv("MPIX_MODE", "pure_mpi")
        out = run(lambda mpx: mpx.COMM_WORLD.coll.mode,
                  system="thetagpu", nranks=2)
        assert out == [DispatchMode.PURE_MPI] * 2

    def test_env_swap_changes_routing(self, monkeypatch):
        """The paper's 'adjust the backend through the library path
        setting' story: same program, different env, different CCL."""

        def body(mpx):
            big = mpx.device_array(1 << 20, fill=1.0)
            out = mpx.device_array(1 << 20)
            mpx.COMM_WORLD.Allreduce(big, out, SUM)
            # version distinguishes the pinned build (the name stays
            # "nccl" — version-pinned backends reuse the same symbols)
            return (mpx.layer.backend.version, float(out.array[0]))

        monkeypatch.setenv("MPIX_BACKEND", "nccl-2.11")
        a = run(body, system="thetagpu", nranks=4)[0]
        monkeypatch.setenv("MPIX_BACKEND", "nccl")
        b = run(body, system="thetagpu", nranks=4)[0]
        assert a == ("2.11.4", 4.0)
        assert b == ("2.18.3", 4.0)
