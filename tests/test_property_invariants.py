"""Property-based invariants on core data structures (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tuning_table import _compress, tune_offline
from repro.hw.systems import make_system
from repro.mpi.config import mvapich_gpu
from repro.perfmodel import ccl_params
from repro.perfmodel.shape import shape_of
from repro.sim.wire import WireTracker
from repro.util.records import ResultRecord, ResultSet

SETTINGS = dict(max_examples=40, deadline=None)


class TestWireTrackerProperties:
    @settings(**SETTINGS)
    @given(st.lists(st.tuples(
        st.floats(0, 1e4),          # depart
        st.integers(0, 1 << 20),    # nbytes
        st.floats(0, 10),           # alpha
    ), min_size=1, max_size=30))
    def test_arrival_never_before_physics(self, transfers):
        """arrival >= depart + wire + alpha for every booking."""
        w = WireTracker()
        beta = 1000.0
        for depart, nbytes, alpha in transfers:
            arrival = w.book([("l", "fwd")], depart, nbytes, beta, alpha)
            assert arrival >= depart + nbytes / beta + alpha - 1e-9

    @settings(**SETTINGS)
    @given(st.lists(st.integers(1, 1 << 16), min_size=1, max_size=40))
    def test_serialization_conserves_wire_time(self, sizes):
        """Back-to-back transfers occupy exactly sum(nbytes)/beta."""
        w = WireTracker()
        beta = 500.0
        last = 0.0
        for n in sizes:
            last = w.book([("l", "fwd")], 0.0, n, beta, 0.0)
        assert last == pytest.approx(sum(sizes) / beta)

    @settings(**SETTINGS)
    @given(st.lists(st.integers(1, 1 << 16), min_size=2, max_size=20))
    def test_disjoint_resources_independent(self, sizes):
        w = WireTracker()
        arrivals = [w.book([(f"l{i}", "fwd")], 0.0, n, 100.0, 0.0)
                    for i, n in enumerate(sizes)]
        for n, arrival in zip(sizes, arrivals):
            assert arrival == pytest.approx(n / 100.0)


class TestTuningTableProperties:
    @settings(**SETTINGS)
    @given(st.lists(st.sampled_from(["mpi", "xccl"]), min_size=1,
                    max_size=30))
    def test_compress_preserves_choice_sequence(self, routes):
        sizes = [4 * (2 ** i) for i in range(len(routes))]
        compressed = _compress(list(zip(sizes, routes)))
        # terminal entry is unbounded
        assert compressed[-1][0] == -1
        # lookup reproduces the original winner at every point

        def lookup(nbytes):
            for max_bytes, route in compressed:
                if max_bytes < 0 or nbytes <= max_bytes:
                    return route
            raise AssertionError

        for size, route in zip(sizes, routes):
            assert lookup(size) == route

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(["nccl", "rccl", "hccl", "msccl"]),
           st.floats(1.0, 3.0))
    def test_hysteresis_monotone(self, backend, hysteresis):
        """More hysteresis can only delay (never advance) the xccl
        crossover."""
        system = {"nccl": "thetagpu", "msccl": "thetagpu",
                  "rccl": "mri", "hccl": "voyager"}[backend]
        shape = shape_of(make_system(system, 2),
                         range(make_system(system, 2).device_count))
        plain = tune_offline(shape, ccl_params(backend), mvapich_gpu())
        biased = tune_offline(shape, ccl_params(backend), mvapich_gpu(),
                              hysteresis=hysteresis)
        for coll in plain.entries:
            a = plain.crossover(coll) or float("inf")
            b = biased.crossover(coll) or float("inf")
            assert b >= a


class TestResultSetProperties:
    @settings(**SETTINGS)
    @given(st.lists(st.tuples(st.integers(0, 20), st.floats(0.1, 100)),
                    min_size=1, max_size=40, unique_by=lambda t: t[0]))
    def test_crossover_is_first_win(self, points):
        rs = ResultSet()
        for x, v in points:
            rs.add(ResultRecord("e", "a", float(2 ** x), 10.0, "us"))
            rs.add(ResultRecord("e", "b", float(2 ** x), float(v), "us"))
        crossing = rs.crossover("a", "b")
        wins = sorted(2 ** x for x, v in points if v <= 10.0)
        if wins:
            assert crossing == wins[0]
        else:
            assert crossing is None


class TestVirtualTimeDeterminism:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(2, 8), st.integers(1, 4096))
    def test_identical_runs_identical_times(self, p, count):
        """The whole stack is deterministic: two separate engine runs
        of the same program produce bit-identical virtual times."""
        from repro.mpi import SUM, Communicator
        from repro.sim.engine import run_spmd

        cluster = make_system("thetagpu", 1)

        def body(ctx):
            comm = Communicator.world(ctx)
            s = ctx.device.zeros(count)
            r = ctx.device.zeros(count)
            comm.Allreduce(s, r, SUM)
            comm.Alltoall(ctx.device.zeros(count * comm.size),
                          ctx.device.zeros(count * comm.size), count=count)
            return ctx.now

        a = run_spmd(cluster, body, nranks=p, progress_timeout_s=20.0)
        b = run_spmd(cluster, body, nranks=p, progress_timeout_s=20.0)
        assert a == b
