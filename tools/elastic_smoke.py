"""Elastic fault-recovery smoke scenario (``make elastic-smoke``).

Runs a 16-rank allreduce loop under ``MPIX_ELASTIC`` +
``MPIX_ONLINE_TUNE`` with one rank killed mid-run: survivors see the
revoked world communicator, agree on the failure set, shrink to a
15-rank communicator, and finish a fixed post-recovery schedule on it.
The run is traced; the Chrome trace is written to the path given as
``argv[1]`` (default ``/tmp/mpix-elastic-smoke.json``) so CI can
validate it and print the online tuner's ``tune-report`` view.

Exit status is non-zero unless every survivor recovered, agreed on the
same failure set, and produced the bit-identical post-shrink payload.
"""

from __future__ import annotations

import json
import sys

from repro import fastpath
from repro.core.runtime import world_communicator
from repro.errors import CommRevokedError
from repro.hw.systems import make_system
from repro.mpi import SUM
from repro.sim.engine import Engine
from repro.sim.faults import FaultPlan, with_faults
from repro.sim.timeline import chrome_trace

NRANKS = 16
DEAD = 5
KILL_AT_US = 60.0
COUNT = 2048
PRE_ITERS = 8    # the kill lands inside this loop
POST_ITERS = 12  # fixed post-recovery schedule, long enough for the
                 # online tuner to re-fit for the 15-rank survivor shape


def body(ctx):
    comm = world_communicator(ctx)
    buf = ctx.device.zeros(COUNT)
    out = ctx.device.zeros(COUNT)
    done = 0
    try:
        for _ in range(PRE_ITERS):
            buf.array[:] = float(ctx.rank + done)
            comm.Allreduce(buf, out, op=SUM)
            done += 1
    except CommRevokedError:
        # ULFM recovery: agree on the failure set, shrink, then run a
        # FIXED schedule on the new communicator.  Survivors abort the
        # failed collective at different loop indices, so "resume where
        # I left off" would deadlock — the agreed schedule is the
        # contract (that is what Comm_agree is for).
        _flag, failed = comm.Comm_agree()
        newcomm = comm.Comm_shrink()
        nbuf = ctx.device.zeros(COUNT)
        nout = ctx.device.zeros(COUNT)
        for i in range(POST_ITERS):
            nbuf.array[:] = float(newcomm.Get_rank() + i)
            newcomm.Allreduce(nbuf, nout, op=SUM)
        return (float(nout.array[0]), newcomm.Get_size(),
                tuple(sorted(failed)))
    return None


def main(argv):
    out_path = argv[1] if len(argv) > 1 else "/tmp/mpix-elastic-smoke.json"
    prev = fastpath.configure(elastic=True, online_tune=True,
                              coop_sched=True)
    try:
        engine = Engine(make_system("thetagpu", 2), nranks=NRANKS,
                        trace=True, progress_timeout_s=5.0)
        injector = with_faults(engine,
                               FaultPlan().kill(DEAD, after_us=KILL_AT_US))
        results = engine.run(body)
        doc = chrome_trace(engine.traces(),
                           nodes={r: engine.node_of(r)
                                  for r in range(NRANKS)})
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)

        survivors = [r for i, r in enumerate(results) if i != DEAD]
        expect = (sum(range(NRANKS - 1))
                  + (POST_ITERS - 1) * (NRANKS - 1))
        ok = (injector.killed == [DEAD]
              and results[DEAD] is None
              and all(r is not None
                      and r[1] == NRANKS - 1
                      and r[2] == (DEAD,)
                      and abs(r[0] - expect) < 1e-9 for r in survivors))
        print(f"elastic smoke: {NRANKS} ranks, rank {DEAD} killed at "
              f"{KILL_AT_US}us; revokes={fastpath.STATS.comm_revokes} "
              f"shrinks={fastpath.STATS.comm_shrinks} "
              f"online_updates={fastpath.STATS.online_updates}")
        if not ok:
            print(f"FAILED: survivor results {set(survivors)}")
            return 1
        if fastpath.STATS.comm_revokes < 1 or fastpath.STATS.comm_shrinks < 1:
            print("FAILED: no revoke/shrink recorded")
            return 1
        if fastpath.STATS.online_updates < 1:
            print("FAILED: online tuner never re-fit on the shrunk comm")
            return 1
        print(f"OK: all {NRANKS - 1} survivors recovered with identical "
              f"payloads; trace -> {out_path}")
        return 0
    finally:
        fastpath.configure(**prev)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
