#!/usr/bin/env python
"""Stdlib fallback linter for ``make lint``.

The canonical linter is ruff (configured in ``pyproject.toml``; CI
installs it).  Hermetic containers without ruff still need the lint
target to mean something, so this script re-implements the checks we
actually gate on with nothing but the standard library:

* **E9** — syntax errors / files that do not parse;
* **F401** — imports never referenced (``__init__.py`` re-export
  modules are exempt, matching the ruff per-file-ignores);
* **F811** — an import redefined by a later import in the same scope.

Usage: ``python tools/lint.py DIR [DIR ...]`` — exits non-zero when
any finding is reported.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

Finding = Tuple[Path, int, str, str]


def iter_sources(roots: List[str]) -> Iterator[Path]:
    for root in roots:
        path = Path(root)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def _imported_names(node: ast.AST) -> List[Tuple[str, int]]:
    """(binding name, line) pairs introduced by an import statement."""
    out = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            out.append((alias.asname or alias.name.split(".")[0], node.lineno))
    elif isinstance(node, ast.ImportFrom):
        for alias in node.names:
            if alias.name == "*":
                continue
            out.append((alias.asname or alias.name, node.lineno))
    return out


_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _collect_scopes(body, imports, scope, conditional):
    """Flatten import statements with their lexical scope.

    Appends ``(name, lineno, scope_id, conditional)`` — ``conditional``
    marks imports under try/if/loop bodies, where a rebinding is a
    deliberate fallback pattern, not an F811.
    """
    for node in body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for name, lineno in _imported_names(node):
                imports.append((name, lineno, scope, conditional))
        elif isinstance(node, _SCOPES):
            inner = getattr(node, "body", [])
            _collect_scopes(inner, imports, id(node), False)
        else:
            for field in ("body", "orelse", "finalbody"):
                _collect_scopes(getattr(node, field, []), imports, scope, True)
            for handler in getattr(node, "handlers", []):
                _collect_scopes(handler.body, imports, scope, True)


def _used_names(tree: ast.Module) -> set:
    """Every identifier the module references, plus ``__all__`` strings
    (a re-export is a use) — annotations included because the codebase
    uses ``from __future__ import annotations`` plus real expressions."""
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # "a.b.c" uses "a"; the Name child covers it, but keep the
            # attribute chain for `import a.b` style access too
            head = node
            while isinstance(head, ast.Attribute):
                head = head.value
            if isinstance(head, ast.Name):
                used.add(head.id)
    for node in ast.walk(tree):
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets)):
            for elt in ast.walk(node.value):
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    used.add(elt.value)
    return used


def check_file(path: Path) -> List[Finding]:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [(path, 0, "E902", str(exc))]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, "E999", exc.msg or "syntax error")]

    findings: List[Finding] = []
    noqa_lines = {i for i, line in enumerate(source.splitlines(), 1)
                  if "noqa" in line}

    imports: List[Tuple[str, int, int, bool]] = []
    _collect_scopes(tree.body, imports, id(tree), False)

    seen = {}
    for name, lineno, scope, conditional in imports:
        key = (scope, name)
        if (key in seen and not conditional and lineno not in noqa_lines):
            findings.append((path, lineno, "F811",
                             f"redefinition of imported name '{name}' "
                             f"(first at line {seen[key]})"))
        elif not conditional:
            seen[key] = lineno

    if path.name != "__init__.py":
        used = _used_names(tree)
        for name, lineno, _scope, conditional in imports:
            # conditional imports (TYPE_CHECKING blocks, try/except
            # fallbacks) may be referenced only from quoted annotations,
            # which this stdlib checker does not parse — leave them to
            # ruff
            if name == "annotations" or lineno in noqa_lines or conditional:
                continue
            if name not in used:
                findings.append((path, lineno, "F401",
                                 f"'{name}' imported but unused"))
    return findings


def main(argv: List[str]) -> int:
    roots = argv or ["src", "tests", "benchmarks", "tools"]
    findings: List[Finding] = []
    count = 0
    for path in iter_sources(roots):
        count += 1
        findings.extend(check_file(path))
    for path, lineno, code, msg in findings:
        print(f"{path}:{lineno}: {code} {msg}")
    print(f"checked {count} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
